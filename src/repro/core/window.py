"""Streaming-window edge partitioning (the paper's §II-B2 class).

The paper classifies ADWISE [15] as a *streaming-window* algorithm: it
still makes one pass over the edge stream, but instead of committing to
the last-scanned edge it keeps a bounded window of scanned edges and
repeatedly assigns the *best-scoring* (edge, partition) choice from the
window.  The paper notes "it may be possible to extend CuSP to handle
this class of algorithms" and leaves it as future work — this module is
that extension.

The implementation keeps CuSP's structure: the graph is read in host
ranges, each host streams its edges through a window, and the resulting
edge->partition assignment is materialized into the standard
:class:`~repro.core.partition.DistributedGraph` (masters are chosen per
the supplied master rule, so windowed policies compose with the existing
``getMaster`` machinery).

Scoring follows ADWISE's degree-aware clustering heuristic: an (edge,
partition) pair scores higher when the partition already holds proxies of
the edge's endpoints (replication avoidance) and lower when the partition
is loaded (balance), and the window lets low-scoring edges wait until
their endpoints' placements firm up.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..runtime.cluster import SimulatedCluster
from ..runtime.cost_model import STAMPEDE2, CostModel
from .framework import PHASE_NAMES
from .master_rules import ContiguousEB, MasterRule
from .masters_phase import run_master_assignment
from .partition import DistributedGraph, LocalPartition
from .policies import Policy
from .prop import GraphProp
from .reading import compute_read_ranges, read_bytes_for_range

__all__ = ["WindowedPartitioner"]


class WindowedPartitioner:
    """ADWISE-style windowed streaming vertex-cut partitioner.

    Parameters
    ----------
    num_partitions:
        Number of partitions (= hosts, as in CuSP).
    window_size:
        Edges held in each host's scoring window.  ``window_size=1``
        degenerates to a plain streaming greedy partitioner; larger
        windows trade partitioning compute for quality (ADWISE's central
        claim).
    balance_weight:
        Strength of the load-balance penalty in the score.
    master_rule:
        How masters are chosen (default: the paper's ContiguousEB).
    shuffle_stream:
        Process each host's edges in a seeded pseudo-random order instead
        of CSR order.  CSR order is already clustered by source, so plain
        greedy is near-optimal on it; ADWISE's window earns its keep on
        *unordered* streams (edge-list inputs), which this flag models.
    """

    def __init__(
        self,
        num_partitions: int,
        window_size: int = 64,
        balance_weight: float = 4.0,
        master_rule: MasterRule | None = None,
        cost_model: CostModel = STAMPEDE2,
        buffer_size: int = 8 << 20,
        shuffle_stream: bool = False,
        seed: int = 0,
    ):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        if balance_weight < 0:
            raise ValueError("balance_weight must be >= 0")
        self.num_partitions = num_partitions
        self.window_size = window_size
        self.balance_weight = balance_weight
        self.master_rule = master_rule or ContiguousEB()
        self.cost_model = cost_model
        self.buffer_size = buffer_size
        self.shuffle_stream = shuffle_stream
        self.seed = seed

    # ------------------------------------------------------------------
    def partition(self, graph: CSRGraph) -> DistributedGraph:
        """Partition ``graph``; returns the standard distributed result."""
        k = self.num_partitions
        cluster = SimulatedCluster(k, cost_model=self.cost_model,
                                   buffer_size=self.buffer_size)
        prop = GraphProp(graph, k)
        ranges = compute_read_ranges(graph, k)

        with cluster.phase(PHASE_NAMES[0]) as ph:
            for h, (start, stop) in enumerate(ranges):
                ph.add_disk(h, read_bytes_for_range(graph, start, stop))

        # Masters via the normal CuSP machinery (windowing concerns edges).
        policy = Policy("window-masters", self.master_rule, _NullEdgeRule())
        with cluster.phase(PHASE_NAMES[1]) as ph:
            ma = run_master_assignment(ph, prop, policy, ranges, sync_rounds=1)

        src_all, dst_all = graph.edges()
        owner = np.full(graph.num_edges, -1, dtype=np.int32)
        # Per-partition load and a (k, n) presence bitmap: present[p, v]
        # iff partition p already holds a proxy of vertex v.
        load = np.zeros(k, dtype=np.float64)
        present = np.zeros((k, graph.num_nodes), dtype=bool)
        target = graph.num_edges / k if k else 0.0

        with cluster.phase(PHASE_NAMES[2]) as ph:
            for h, (start, stop) in enumerate(ranges):
                lo = int(graph.indptr[start])
                hi = int(graph.indptr[stop])
                assigned = self._stream_host(
                    src_all, dst_all, lo, hi, load, present, target
                )
                owner[lo:hi] = assigned
                # Window maintenance rescans each buffered edge ~window
                # times in the worst case; charge the realistic amortized
                # 2 passes plus per-edge k-way scoring.
                ph.add_compute(h, float((hi - lo) * (2 + k)))
                # Assignment decisions stream to the owning hosts.
                counts = np.bincount(assigned, minlength=k)
                for j in range(k):
                    if j != h and counts[j]:
                        ph.comm.send(h, j, None, nbytes=int(counts[j]) * 8,
                                     logical_messages=int(counts[j]),
                                     coalesce=True)

        with cluster.phase(PHASE_NAMES[4]) as ph:
            partitions = self._materialize(graph, owner, ma.masters, ph)

        return DistributedGraph(
            partitions=partitions,
            masters=ma.masters,
            num_global_nodes=graph.num_nodes,
            num_global_edges=graph.num_edges,
            policy_name=f"Window({self.window_size})",
            invariant="vertex-cut",
            breakdown=cluster.breakdown(),
        )

    # ------------------------------------------------------------------
    def _stream_host(
        self, src, dst, lo: int, hi: int, load, present, target
    ) -> np.ndarray:
        """Assign edges [lo, hi) through a bounded scoring window.

        Each commit re-scores the whole window against every partition in
        one vectorized (k, |window|) pass: +1 for each endpoint already
        present on the partition, minus the balance penalty.
        """
        assigned = np.empty(hi - lo, dtype=np.int32)
        if self.shuffle_stream:
            rng = np.random.default_rng(self.seed + lo)
            stream = (lo + rng.permutation(hi - lo)).tolist()
        else:
            stream = list(range(lo, hi))
        window: list[int] = []  # edge indices currently buffered
        cursor = 0
        penalty_scale = self.balance_weight / target if target > 0 else 0.0

        while cursor < len(stream) or window:
            while cursor < len(stream) and len(window) < self.window_size:
                window.append(stream[cursor])
                cursor += 1
            w = np.asarray(window, dtype=np.int64)
            scores = (
                present[:, src[w]].astype(np.float64)
                + present[:, dst[w]]
                - (penalty_scale * load)[:, None]
            )
            flat = int(np.argmax(scores))
            p, i = divmod(flat, w.size)
            e = window.pop(i)
            assigned[e - lo] = p
            load[p] += 1.0
            present[p, src[e]] = True
            present[p, dst[e]] = True
        return assigned

    def _materialize(self, graph, owner, masters, phase) -> list[LocalPartition]:
        """Build the local partitions (construction-phase equivalent)."""
        k = self.num_partitions
        n = graph.num_nodes
        src, dst = graph.edges()
        weighted = graph.is_weighted
        partitions = []
        for j in range(k):
            mask = owner == j
            s, d = src[mask], dst[mask]
            w = graph.edge_data[mask] if weighted else None
            mastered = np.flatnonzero(masters == j).astype(np.int64)
            gids = np.unique(np.concatenate([s, d, mastered]))
            is_master = masters[gids] == j
            ordered = np.concatenate([gids[is_master], gids[~is_master]])
            lookup = np.full(n, -1, dtype=np.int64)
            lookup[ordered] = np.arange(ordered.size)
            local = CSRGraph.from_edges(
                lookup[s], lookup[d], num_nodes=ordered.size, edge_data=w
            )
            phase.add_compute(j, 2.0 * s.size)
            partitions.append(
                LocalPartition(
                    host=j,
                    global_ids=ordered,
                    num_masters=int(is_master.sum()),
                    master_host=masters[ordered].astype(np.int32),
                    local_graph=local,
                    _lookup=lookup,
                )
            )
        return partitions


class _NullEdgeRule:
    """Placeholder edge rule for the masters-only Policy above."""

    name = "null"
    stateful = False
    invariant = "vertex-cut"

    def make_state(self, num_partitions, num_hosts):  # pragma: no cover
        from .state import VoidState

        return VoidState()
