"""``getMaster`` rules (paper Algorithm 1).

A master rule decides, for each vertex, which partition holds its master
proxy.  The framework calls rules through :meth:`MasterRule.assign_batch`
so built-in stateless rules can run fully vectorized; history-sensitive
rules (the Fennel family) fall back to the paper's per-node formulation.

Rule capabilities drive the framework's synchronization optimizations
(paper §IV-D5):

* ``is_pure`` (no state, no ``masters`` argument): every host can
  *recompute* any master assignment locally, so the master-assignment
  phase needs no communication at all (EEC/HVC/CVC take this path);
* ``uses_masters``: the rule reads neighbors' assignments, so assignments
  must be exchanged between rounds (FEC/GVC/SVC take this path).
"""

from __future__ import annotations

import math

import numpy as np

from .prop import GraphProp
from .state import PartitioningState, PartitionLoadState, VoidState

__all__ = [
    "MasterRule",
    "Contiguous",
    "ContiguousEB",
    "Fennel",
    "FennelEB",
    "LDG",
    "MASTER_RULES",
    "make_master_rule",
]


class MasterRule:
    """Base class for ``getMaster`` rules."""

    name: str = "abstract"
    #: True when the rule reads the ``masters`` map of neighbors.
    uses_masters: bool = False
    #: True when the rule reads/writes partitioning state.
    stateful: bool = False

    @property
    def is_pure(self) -> bool:
        """Pure rules are replicated (recomputed) instead of communicated."""
        return not (self.uses_masters or self.stateful)

    def make_state(self, num_partitions: int, num_hosts: int) -> PartitioningState:
        return VoidState()

    def assign(
        self,
        prop: GraphProp,
        node_id: int,
        mstate: PartitioningState | None,
        masters: np.ndarray | None = None,
    ) -> int:
        """Partition of the master proxy for ``node_id`` (paper signature)."""
        raise NotImplementedError

    def assign_batch(
        self,
        prop: GraphProp,
        node_ids: np.ndarray,
        mstate: PartitioningState | None,
        masters: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorizable batched assignment; default loops over :meth:`assign`.

        Multiple calls with the same arguments must return the same values
        (paper §III-A); stateful rules therefore process nodes in a fixed
        order.
        """
        out = np.empty(len(node_ids), dtype=np.int32)
        for i, v in enumerate(np.asarray(node_ids)):
            out[i] = self.assign(prop, int(v), mstate, masters)
            if masters is not None:
                # A host's own assignments are locally visible at once
                # (its local masters map, paper SIV-B2).
                masters[v] = out[i]
        return out

    def compute_units(self, num_nodes: int, num_edges: int, k: int) -> float:
        """Abstract work units to assign ``num_nodes`` masters (cost model)."""
        return float(num_nodes)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class Contiguous(MasterRule):
    """Equal-sized contiguous chunks of node ids (Algorithm 1, CONTIGUOUS)."""

    name = "Contiguous"

    def assign(
        self,
        prop: GraphProp,
        node_id: int,
        mstate: PartitioningState | None,
        masters: np.ndarray | None = None,
    ) -> int:
        block = math.ceil(prop.getNumNodes() / prop.getNumPartitions())
        return node_id // block

    def assign_batch(
        self,
        prop: GraphProp,
        node_ids: np.ndarray,
        mstate: PartitioningState | None,
        masters: np.ndarray | None = None,
    ) -> np.ndarray:
        block = math.ceil(prop.getNumNodes() / prop.getNumPartitions())
        return (np.asarray(node_ids) // block).astype(np.int32)


class ContiguousEB(MasterRule):
    """Contiguous chunks balanced by outgoing-edge count (CONTIGUOUSEB).

    The partition of a node is determined by which equal-sized block of the
    *edge array* its first outgoing edge falls in, so every partition gets
    roughly the same number of edges.
    """

    name = "ContiguousEB"

    def _edge_block(self, prop: GraphProp) -> int:
        return math.ceil((prop.getNumEdges() + 1) / prop.getNumPartitions())

    def assign(
        self,
        prop: GraphProp,
        node_id: int,
        mstate: PartitioningState | None,
        masters: np.ndarray | None = None,
    ) -> int:
        first = prop.first_out_edges(np.array([node_id]))[0]
        return int(first) // self._edge_block(prop)

    def assign_batch(
        self,
        prop: GraphProp,
        node_ids: np.ndarray,
        mstate: PartitioningState | None,
        masters: np.ndarray | None = None,
    ) -> np.ndarray:
        first = prop.first_out_edges(np.asarray(node_ids))
        return (first // self._edge_block(prop)).astype(np.int32)


#: Abstract compute units per Fennel score entry: each entry evaluates a
#: floating-point pow() under an irregular access pattern, roughly 20x the
#: single-op unit the cost model is denominated in.
_SCORE_UNIT = 20.0


def _fennel_alpha(n: int, m: int, k: int, gamma: float) -> float:
    """The paper's alpha = m * h^(gamma-1) / n^gamma (§V-A)."""
    if n == 0:
        return 0.0
    return m * (k ** (gamma - 1)) / (n**gamma)


class Fennel(MasterRule):
    """The Fennel streaming heuristic (Algorithm 1, FENNEL).

    Scores each partition by the number of already-placed neighbors it
    holds minus a load penalty ``alpha * gamma * numNodes[p]**(gamma-1)``
    and places the node on the best-scoring partition.  (The paper's
    pseudocode lists the penalty without the minus sign; the Fennel
    objective it cites [13] subtracts it, which is what we do — otherwise
    the rule would pile every node onto one partition.)
    """

    name = "Fennel"
    uses_masters = True
    stateful = True

    def __init__(self, gamma: float = 1.5):
        if gamma <= 1.0:
            raise ValueError("gamma must be > 1")
        self.gamma = gamma

    def make_state(self, num_partitions: int, num_hosts: int) -> PartitionLoadState:
        return PartitionLoadState(num_partitions, num_hosts)

    def assign(
        self,
        prop: GraphProp,
        node_id: int,
        mstate: PartitioningState | None,
        masters: np.ndarray | None = None,
    ) -> int:
        k = prop.getNumPartitions()
        alpha = _fennel_alpha(
            prop.getNumNodes(), prop.getNumEdges(), k, self.gamma
        )
        load = mstate.numNodes.astype(np.float64)
        score = -(alpha * self.gamma) * np.power(load, self.gamma - 1.0)
        if masters is not None:
            nbrs = prop.getNodeOutNeighbors(node_id)
            if nbrs.size:
                known = masters[nbrs]
                known = known[known >= 0]
                if known.size:
                    score += np.bincount(known, minlength=k)
        part = int(np.argmax(score))
        mstate.add_node(part)
        return part

    def assign_batch(
        self,
        prop: GraphProp,
        node_ids: np.ndarray,
        mstate: PartitioningState | None,
        masters: np.ndarray | None = None,
    ) -> np.ndarray:
        """Incremental-penalty batch kernel.

        Decisions stay sequential — each placement feeds the next node's
        load term — but the k-wide ``pow()`` penalty vector is maintained
        *in place*: a placement changes one partition's load, so only
        that entry is recomputed (one scalar ``pow`` per node instead of
        k).  The single-entry update evaluates exactly the expression the
        per-node formulation evaluates for that entry, so the decision
        sequence is bit-identical to :meth:`assign` called in order.
        """
        node_ids = np.asarray(node_ids)
        out = np.empty(node_ids.size, dtype=np.int32)
        if node_ids.size == 0:
            return out
        k = prop.getNumPartitions()
        alpha_gamma = (
            _fennel_alpha(prop.getNumNodes(), prop.getNumEdges(), k, self.gamma)
            * self.gamma
        )
        gm1 = self.gamma - 1.0
        load = mstate.numNodes.astype(np.float64)
        penalty = -alpha_gamma * np.power(load, gm1)
        # Loads are integer node counts, so every penalty value a
        # placement can produce is known up front: one vectorized pow
        # over [0, max_load + batch] replaces all per-node pow calls.
        # Table entries evaluate the same expression on the same values,
        # so lookups are bit-identical to the per-node recompute.
        load_int = [int(x) for x in mstate.numNodes]
        top = max(load_int) + node_ids.size + 1
        table = -alpha_gamma * np.power(
            np.arange(top, dtype=np.float64), gm1
        )
        indptr, indices = prop.graph.indptr, prop.graph.indices
        bincount, argmax = np.bincount, np.argmax
        for i, v in enumerate(node_ids):
            part = -1
            if masters is not None:
                nbrs = indices[indptr[v] : indptr[v + 1]]
                if nbrs.size:
                    known = masters[nbrs]
                    known = known[known >= 0]
                    if known.size:
                        part = int(argmax(
                            penalty + bincount(known, minlength=k)
                        ))
            if part < 0:
                # No placed neighbors: the affinity term is zero
                # everywhere, so the penalty alone decides.
                part = int(argmax(penalty))
            out[i] = part
            li = load_int[part] + 1
            load_int[part] = li
            penalty[part] = table[li]
            if masters is not None:
                masters[v] = part
        # State deltas sum per partition, so one bulk charge at the end
        # leaves mstate exactly as n per-node add_node() calls would.
        placed = np.bincount(out, minlength=k)
        for p in np.flatnonzero(placed):
            mstate.add_node(int(p), int(placed[p]))
        return out

    def compute_units(self, num_nodes: int, num_edges: int, k: int) -> float:
        # Per node: a k-length score vector where every entry pays a
        # pow() (~10 simple ops), plus a scan of its neighbors.
        return float(num_nodes * k * _SCORE_UNIT + num_edges)


class FennelEB(MasterRule):
    """Edge-balanced Fennel variant (Algorithm 1, FENNELEB; used by PowerLyra's
    Ginger).

    High-degree nodes short-circuit to :class:`ContiguousEB` (the paper's
    pseudocode neither scores nor charges them to the load state).  For the
    rest, the load penalty uses ``(numNodes[p] + mu * numEdges[p]) / 2``
    with ``mu = n / m``; placed nodes charge both their node and their
    out-degree worth of edges to the chosen partition.  (The pseudocode
    writes ``numEdges[part]++``, but a single unit per node would make
    ``numEdges`` identical to ``numNodes`` and the edge-balance term
    vacuous; charging the out-degree matches the Ginger heuristic [5].)
    """

    name = "FennelEB"
    uses_masters = True
    stateful = True

    def __init__(self, gamma: float = 1.5, degree_threshold: int = 100):
        if gamma <= 1.0:
            raise ValueError("gamma must be > 1")
        if degree_threshold < 0:
            raise ValueError("degree_threshold must be >= 0")
        self.gamma = gamma
        self.degree_threshold = degree_threshold
        self._contiguous_eb = ContiguousEB()

    def make_state(self, num_partitions: int, num_hosts: int) -> PartitionLoadState:
        return PartitionLoadState(num_partitions, num_hosts)

    def assign(
        self,
        prop: GraphProp,
        node_id: int,
        mstate: PartitioningState | None,
        masters: np.ndarray | None = None,
    ) -> int:
        degree = prop.getNodeOutDegree(node_id)
        if degree > self.degree_threshold:
            return self._contiguous_eb.assign(prop, node_id, mstate)
        k = prop.getNumPartitions()
        n, m = prop.getNumNodes(), prop.getNumEdges()
        alpha = _fennel_alpha(n, m, k, self.gamma)
        mu = n / m if m else 0.0
        load = (
            mstate.numNodes.astype(np.float64)
            + mu * mstate.numEdges.astype(np.float64)
        ) / 2.0
        score = -(alpha * self.gamma) * np.power(load, self.gamma - 1.0)
        if masters is not None:
            nbrs = prop.getNodeOutNeighbors(node_id)
            if nbrs.size:
                known = masters[nbrs]
                known = known[known >= 0]
                if known.size:
                    score += np.bincount(known, minlength=k)
        part = int(np.argmax(score))
        mstate.add_node(part)
        mstate.add_edges(part, degree)
        return part

    def assign_batch(
        self,
        prop: GraphProp,
        node_ids: np.ndarray,
        mstate: PartitioningState | None,
        masters: np.ndarray | None = None,
    ) -> np.ndarray:
        """Incremental-penalty batch kernel (see :meth:`Fennel.assign_batch`).

        The high-degree short-circuit is vectorized up front: those nodes
        go straight to ContiguousEB.  For the rest, the blended
        ``(numNodes + mu * numEdges) / 2`` load penalty is maintained in
        place — only the chosen partition's entry is recomputed per
        placement — keeping the decision sequence bit-identical to the
        per-node formulation.
        """
        node_ids = np.asarray(node_ids)
        out = np.empty(node_ids.size, dtype=np.int32)
        if node_ids.size == 0:
            return out
        k = prop.getNumPartitions()
        n, m = prop.getNumNodes(), prop.getNumEdges()
        degrees = prop.out_degrees(node_ids)
        high = degrees > self.degree_threshold
        if high.any():
            out[high] = self._contiguous_eb.assign_batch(
                prop, node_ids[high], None
            )
            if masters is not None:
                masters[node_ids[high]] = out[high]
        if high.all():
            return out
        alpha_gamma = _fennel_alpha(n, m, k, self.gamma) * self.gamma
        gm1 = self.gamma - 1.0
        mu = n / m if m else 0.0
        nodes_load = mstate.numNodes.astype(np.float64)
        edges_load = mstate.numEdges.astype(np.float64)
        load = (nodes_load + mu * edges_load) / 2.0
        penalty = -alpha_gamma * np.power(load, gm1)
        indptr, indices = prop.graph.indptr, prop.graph.indices
        bincount, argmax, power = np.bincount, np.argmax, np.power
        low_positions = np.flatnonzero(~high)
        for i in low_positions:
            v = node_ids[i]
            part = -1
            if masters is not None:
                nbrs = indices[indptr[v] : indptr[v + 1]]
                if nbrs.size:
                    known = masters[nbrs]
                    known = known[known >= 0]
                    if known.size:
                        part = int(argmax(
                            penalty + bincount(known, minlength=k)
                        ))
            if part < 0:
                part = int(argmax(penalty))
            out[i] = part
            nodes_load[part] += 1.0
            edges_load[part] += float(degrees[i])
            load[part] = (nodes_load[part] + mu * edges_load[part]) / 2.0
            # Same vectorized pow kernel as the full recompute, applied
            # to the one entry that changed.
            penalty[part] = -alpha_gamma * power(load[part : part + 1], gm1)[0]
            if masters is not None:
                masters[v] = part
        # Bulk state charge: deltas sum per partition, so this leaves
        # mstate exactly as per-node add_node/add_edges calls would.
        low_parts = out[low_positions]
        placed = np.bincount(low_parts, minlength=k)
        placed_edges = np.bincount(
            low_parts, weights=degrees[low_positions], minlength=k
        ).astype(np.int64)
        for p in np.flatnonzero(placed):
            mstate.add_node(int(p), int(placed[p]))
            mstate.add_edges(int(p), int(placed_edges[p]))
        return out

    def compute_units(self, num_nodes: int, num_edges: int, k: int) -> float:
        return float(num_nodes * k * _SCORE_UNIT + num_edges)



class LDG(MasterRule):
    """Linear Deterministic Greedy [12] (Table I's remaining edge-cut).

    Places each vertex on the partition maximizing
    ``|N(v) intersect P| * (1 - |P| / capacity)`` where capacity is the
    balanced share ``ceil(n / k)``: neighbor affinity scaled down as the
    partition fills, hitting zero at capacity.  Like Fennel it needs the
    total vertex count up front and tracks assignment state (paper
    SII-B1); unlike Fennel the penalty is multiplicative, so LDG never
    overfills a partition.
    """

    name = "LDG"
    uses_masters = True
    stateful = True

    def make_state(self, num_partitions: int, num_hosts: int) -> PartitionLoadState:
        return PartitionLoadState(num_partitions, num_hosts)

    def assign(
        self,
        prop: GraphProp,
        node_id: int,
        mstate: PartitioningState | None,
        masters: np.ndarray | None = None,
    ) -> int:
        k = prop.getNumPartitions()
        capacity = math.ceil(prop.getNumNodes() / k) or 1
        load = mstate.numNodes.astype(np.float64)
        weight = 1.0 - load / capacity
        affinity = np.zeros(k, dtype=np.float64)
        if masters is not None:
            nbrs = prop.getNodeOutNeighbors(node_id)
            if nbrs.size:
                known = masters[nbrs]
                known = known[known >= 0]
                if known.size:
                    affinity = np.bincount(known, minlength=k).astype(np.float64)
        score = affinity * np.maximum(weight, 0.0)
        if not score.any():
            # No placed neighbors (or everything full): least loaded.
            part = int(np.argmin(load))
        else:
            part = int(np.argmax(score))
        if load[part] >= capacity:
            part = int(np.argmin(load))
        mstate.add_node(part)
        return part

    def assign_batch(
        self,
        prop: GraphProp,
        node_ids: np.ndarray,
        mstate: PartitioningState | None,
        masters: np.ndarray | None = None,
    ) -> np.ndarray:
        node_ids = np.asarray(node_ids)
        out = np.empty(node_ids.size, dtype=np.int32)
        if node_ids.size == 0:
            return out
        k = prop.getNumPartitions()
        capacity = math.ceil(prop.getNumNodes() / k) or 1
        load = mstate.numNodes.astype(np.float64)
        indptr, indices = prop.graph.indptr, prop.graph.indices
        for i, v in enumerate(node_ids):
            weight = np.maximum(1.0 - load / capacity, 0.0)
            affinity = np.zeros(k, dtype=np.float64)
            if masters is not None:
                nbrs = indices[indptr[v] : indptr[v + 1]]
                if nbrs.size:
                    known = masters[nbrs]
                    known = known[known >= 0]
                    if known.size:
                        affinity = np.bincount(
                            known, minlength=k
                        ).astype(np.float64)
            score = affinity * weight
            if not score.any():
                part = int(np.argmin(load))
            else:
                part = int(np.argmax(score))
            if load[part] >= capacity:
                part = int(np.argmin(load))
            out[i] = part
            load[part] += 1.0
            mstate.add_node(part)
            if masters is not None:
                masters[v] = part
        return out

    def compute_units(self, num_nodes: int, num_edges: int, k: int) -> float:
        return float(num_nodes * k * _SCORE_UNIT + num_edges)


MASTER_RULES = {
    "Contiguous": Contiguous,
    "ContiguousEB": ContiguousEB,
    "Fennel": Fennel,
    "FennelEB": FennelEB,
    "LDG": LDG,
}


def make_master_rule(name: str, **kwargs: object) -> MasterRule:
    """Instantiate a master rule by its paper name."""
    if name not in MASTER_RULES:
        raise KeyError(f"unknown master rule {name!r}; choose from {list(MASTER_RULES)}")
    return MASTER_RULES[name](**kwargs)
