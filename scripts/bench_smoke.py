#!/usr/bin/env python
"""Benchmark smoke test: tiny graph, throughput floor + result digest.

Partitions a small deterministic graph on both fabrics and asserts

* the partition digest matches the committed reference
  (``scripts/bench_smoke_reference.json``) — partitions are a pure
  function of (graph, policy, seed), so any drift is a real behaviour
  change, not noise;
* the columnar fabric clears a *very* conservative wall-clock
  throughput floor, catching order-of-magnitude perf regressions
  without the variance problems of asserting real benchmark numbers
  in CI.

Regenerate the reference (only after an intended behaviour change)
with ``python scripts/bench_smoke.py --write-reference``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.core import CuSP  # noqa: E402
from repro.graph import erdos_renyi  # noqa: E402

REFERENCE = Path(__file__).with_name("bench_smoke_reference.json")

NUM_NODES = 2_000
NUM_EDGES = 24_000
SEED = 5
POLICY = "CVC"
NUM_HOSTS = 4
#: Floor in edges/second — two orders of magnitude below what a
#: single modern core measures, so only a gross regression trips it.
THROUGHPUT_FLOOR = 50_000.0


def partition_digest(dg) -> str:
    """SHA-256 over every array that defines the partitions."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(dg.masters).tobytes())
    for part in dg.partitions:
        for arr in (part.global_ids, part.master_host,
                    part.local_graph.indptr, part.local_graph.indices):
            h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def run() -> dict:
    graph = erdos_renyi(NUM_NODES, NUM_EDGES, seed=SEED)
    t0 = time.perf_counter()
    dg = CuSP(NUM_HOSTS, POLICY, fabric="columnar").partition(graph)
    elapsed = time.perf_counter() - t0
    scalar_dg = CuSP(NUM_HOSTS, POLICY, fabric="scalar").partition(graph)
    # The process executor must complete and reproduce the digest (its
    # wall-clock is not floored: fork/pickle overhead dominates at this
    # graph size and only the serial throughput guards regressions).
    process_dg = CuSP(
        NUM_HOSTS, POLICY, fabric="columnar", executor="process"
    ).partition(graph)
    return {
        "digest": partition_digest(dg),
        "scalar_digest": partition_digest(scalar_dg),
        "process_digest": partition_digest(process_dg),
        "edges": graph.num_edges,
        "elapsed_s": elapsed,
        "edges_per_s": graph.num_edges / elapsed,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-reference", action="store_true",
        help="record the current digest as the committed reference",
    )
    args = parser.parse_args(argv)
    result = run()

    if result["digest"] != result["scalar_digest"]:
        print("FAIL: columnar and scalar fabrics disagree", file=sys.stderr)
        return 1

    if result["digest"] != result["process_digest"]:
        print("FAIL: process executor diverges from serial", file=sys.stderr)
        return 1

    if args.write_reference:
        REFERENCE.write_text(json.dumps({
            "policy": POLICY,
            "num_hosts": NUM_HOSTS,
            "graph": {"nodes": NUM_NODES, "edges": NUM_EDGES, "seed": SEED},
            "digest": result["digest"],
        }, indent=2) + "\n")
        print(f"reference written: {result['digest'][:16]}…")
        return 0

    if not REFERENCE.exists():
        print(f"FAIL: no committed reference at {REFERENCE}", file=sys.stderr)
        return 1
    expected = json.loads(REFERENCE.read_text())["digest"]
    if result["digest"] != expected:
        print(
            "FAIL: partition digest drifted\n"
            f"  expected {expected}\n"
            f"  got      {result['digest']}\n"
            "(if the change is intended, rerun with --write-reference)",
            file=sys.stderr,
        )
        return 1
    if result["edges_per_s"] < THROUGHPUT_FLOOR:
        print(
            f"FAIL: throughput {result['edges_per_s']:.0f} edges/s below "
            f"the {THROUGHPUT_FLOOR:.0f} floor",
            file=sys.stderr,
        )
        return 1
    print(
        f"bench-smoke OK: digest {result['digest'][:16]}…, "
        f"{result['edges_per_s'] / 1e6:.2f} Medges/s "
        f"({result['elapsed_s'] * 1e3:.0f} ms)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
