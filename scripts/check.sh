#!/usr/bin/env bash
# Full correctness gate: strict SPMD-safety lint, strict phase-contract
# diff, type check (when mypy is installed), tier-1 suite, the dedicated
# fault/recovery suite, the analyzer mutation campaign (detection rate +
# committed-matrix digest), the bench smoke test (throughput floor +
# partition digest), and end-to-end CLI exit-code checks (a corrupted
# partition directory must make `cusp validate` exit non-zero).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== SPMD-safety lint (strict) =="
python -m repro lint src/repro --strict

echo "== whole-program analysis (deep lint, strict) =="
# Run twice so the gate also demonstrates the incremental cache: the
# second run must replay everything from per-file SHA-256 cache hits.
deep_cache="$(mktemp -u)"
python -m repro lint src/repro --deep --strict --cache "$deep_cache"
echo "-- warm re-run (everything cached):"
time python -m repro lint src/repro --deep --strict --cache "$deep_cache"
rm -f "$deep_cache"

echo "== phase-contract diff (strict) =="
python -m repro contracts src/repro --strict

echo "== type check (mypy, when available) =="
if command -v mypy >/dev/null 2>&1; then
    mypy --config-file pyproject.toml
else
    echo "mypy not installed; skipping (CI runs it as a dedicated job)"
fi

echo "== tier-1: unit + integration + property tests =="
python -m pytest -x -q

echo "== fault-injection and crash-recovery suite =="
python -m pytest -x -q -m faults

echo "== chaos campaign: full fault family, bit-identity gate =="
python -m repro chaos --plans 10 --seed 7 --quiet

echo "== analyzer mutation campaign: detection + matrix digest gate =="
python -m repro mutate --budget 24 --seed 7 --strict --quiet \
    --reference MUTATION_MATRIX.json

echo "== bench-smoke: throughput floor + partition digest =="
python scripts/bench_smoke.py

echo "== CLI exit-code checks =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

python -m repro generate er "$tmp/g.gr" --nodes 300 --degree 8 --seed 3 >/dev/null

# Faulty run must recover, validate, and exit 0.
python -m repro partition "$tmp/g.gr" -k 4 -p CVC \
    --inject-faults "seed=42,send-fail=0.05,crash=1@2" \
    --checkpoint-dir "$tmp/ckpt" --validate --save "$tmp/parts" >/dev/null

# A clean saved directory validates.
python -m repro validate "$tmp/parts" "$tmp/g.gr" >/dev/null

# A corrupted master map must exit non-zero.
python - "$tmp/parts" <<'EOF'
import sys
import numpy as np
path = sys.argv[1] + "/masters.npy"
m = np.load(path)
m[:5] = (m[:5] + 1) % 4
np.save(path, m)
EOF
if python -m repro validate "$tmp/parts" "$tmp/g.gr" >/dev/null 2>&1; then
    echo "FAIL: validate accepted a corrupted partition directory" >&2
    exit 1
fi

# A directory that cannot be loaded must exit non-zero too.
mkdir -p "$tmp/bogus"
echo '{ not json' > "$tmp/bogus/meta.json"
if python -m repro validate "$tmp/bogus" >/dev/null 2>&1; then
    echo "FAIL: validate accepted an unloadable directory" >&2
    exit 1
fi

echo "all checks passed"
