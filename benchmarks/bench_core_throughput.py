"""Micro-benchmarks of the partitioner's hot paths (real wall-clock, via
pytest-benchmark's statistics rather than the simulated cost model)."""

import pytest

from repro.core import CuSP
from repro.graph import get_dataset


@pytest.fixture(scope="module")
def graph():
    return get_dataset("clueweb", "small")


@pytest.fixture(scope="module")
def wdc_graph():
    """The wdc-scale workload the BENCH_*.json numbers are recorded on."""
    return get_dataset("wdc", "bench")


@pytest.mark.parametrize("policy", ["EEC", "HVC", "CVC"])
def test_partition_throughput_stateless(benchmark, graph, policy):
    cusp = CuSP(8, policy)
    result = benchmark(lambda: cusp.partition(graph))
    assert result.num_global_edges == graph.num_edges


def test_partition_throughput_fennel(benchmark, graph):
    cusp = CuSP(8, "SVC", sync_rounds=10)
    result = benchmark.pedantic(
        lambda: cusp.partition(graph), rounds=3, iterations=1
    )
    assert result.num_global_edges == graph.num_edges


@pytest.mark.parametrize("executor", ["serial", "parallel", "process"])
def test_partition_throughput_executor(benchmark, graph, executor):
    """Serial vs thread-pool vs pooled-process execution engine on the
    same workload (the trio recorded in BENCH_executors.json).

    One warm-up round first: the process executor's first barrier pays
    the one-time pool spawn + graph-residency publish, which later
    barriers (and real multi-phase runs) amortize away.  Timed rounds
    measure the warm steady state; BENCH_executors.json records the
    warm best and flags it with ``warmup: true``.
    """
    cusp = CuSP(8, "CVC", executor=executor)
    result = benchmark.pedantic(
        lambda: cusp.partition(graph),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert result.num_global_edges == graph.num_edges


@pytest.mark.parametrize("fabric", ["columnar", "scalar"])
def test_partition_throughput_fabric(benchmark, wdc_graph, fabric):
    """Columnar batch fabric vs the scalar compatibility path (the
    before/after pair recorded in BENCH_colfab.json).  Warmed for the
    same reason as the executor trio: first-run allocator and page-cache
    effects are not what the JSON records."""
    cusp = CuSP(8, "CVC", fabric=fabric)
    result = benchmark.pedantic(
        lambda: cusp.partition(wdc_graph),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert result.num_global_edges == wdc_graph.num_edges


def test_transpose_throughput(benchmark, graph):
    t = benchmark(graph.transpose)
    assert t.num_edges == graph.num_edges
