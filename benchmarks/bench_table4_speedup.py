"""Table IV: average speedup of CuSP over XtraPulp (partitioning + apps)."""

from repro.experiments import table4


def test_table4_speedup(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: table4.run(ctx), rounds=1, iterations=1)
    record(result)
    by_policy = {r["policy"]: r for r in result.rows}
    # All partitioning speedups over XtraPulp exceed 1.
    for policy, row in by_policy.items():
        assert row["partitioning speedup"] > 1.0, policy
    # ContiguousEB-master policies partition faster than FennelEB ones.
    assert (
        by_policy["EEC"]["partitioning speedup"]
        > by_policy["FEC"]["partitioning speedup"]
    )
    # Structured cuts (EEC/CVC/SVC) execute apps at least as fast as
    # XtraPulp partitions on average; the general vertex-cuts may not
    # (the paper's HVC/GVC are below 1 too).
    for policy in ("EEC", "CVC", "SVC"):
        assert by_policy[policy]["app execution speedup"] > 0.95, policy
    assert (
        by_policy["CVC"]["app execution speedup"]
        > by_policy["HVC"]["app execution speedup"]
    )
