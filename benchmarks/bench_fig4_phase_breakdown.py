"""Figure 4: time spent in the different phases of CuSP."""

from repro.experiments import fig4


def test_fig4_phase_breakdown(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: fig4.run(ctx), rounds=1, iterations=1)
    record(result)
    for row in result.rows:
        phases = {
            name: row[name]
            for name in (
                "Graph Reading", "Master Assignment", "Edge Assignment",
                "Graph Allocation/Other", "Graph Construction",
            )
        }
        biggest = max(phases, key=phases.get)
        if row["policy"] == "EEC":
            # EEC is communication-free: disk reading dominates.
            assert biggest == "Graph Reading", row
        elif row["policy"] in ("FEC", "GVC", "SVC"):
            # FennelEB's master assignment is the bottleneck.
            assert phases["Master Assignment"] > phases["Edge Assignment"], row
            assert (
                phases["Master Assignment"]
                > phases["Graph Reading"]
            ), row
        if row["policy"] in ("HVC", "CVC"):
            # Edge movement (assignment + construction) dominates, with a
            # negligible master-assignment phase.
            assert (
                phases["Edge Assignment"] + phases["Graph Construction"]
                > phases["Master Assignment"]
            ), row
