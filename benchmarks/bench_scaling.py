"""Strong-scaling bench (Supplementary C): partitioning and app time vs
host count; CVC's partner advantage must widen with k."""

from repro.experiments import scaling


def test_strong_scaling(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: scaling.run_strong_scaling(ctx, hosts=[2, 4, 8, 16, 32]),
        rounds=1, iterations=1,
    )
    record(result)
    first, last = result.rows[0], result.rows[-1]
    # Partitioning time falls as hosts are added (strong scaling).
    for policy in ("EEC", "HVC", "CVC"):
        assert last[f"{policy} part ms"] < first[f"{policy} part ms"]
    # CVC's partner count stays well under the general vertex-cut's.
    assert last["CVC partners"] < 0.6 * last["HVC partners"]
    # And its bfs time beats HVC's at the largest host count.
    assert last["CVC bfs ms"] < last["HVC bfs ms"]
