"""Table V: data volume in edge assignment + construction, CVC vs HVC."""

from repro.experiments import table5


def test_table5_comm_volume(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: table5.run(ctx), rounds=1, iterations=1)
    record(result)
    by_key = {(r["graph"], r["policy"]): r for r in result.rows}
    graphs = {g for g, _ in by_key}
    for g in graphs:
        hvc = by_key[(g, "HVC")]
        cvc = by_key[(g, "CVC")]
        hvc_total = hvc["assignment (MB)"] + hvc["construction (MB)"]
        cvc_total = cvc["assignment (MB)"] + cvc["construction (MB)"]
        # HVC communicates more data than CVC...
        assert hvc_total > cvc_total, g
        # ...yet is only mildly slower (paper: 1.2x on average; allow 2x).
        assert hvc["total time (ms)"] < 2.0 * cvc["total time (ms)"], g
