"""Figure 6: application execution time on 16 hosts (paper: 128)."""

from bench_fig5_app_time_64 import check_app_time_shapes

from repro.experiments import fig56


def test_fig6_app_time(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: fig56.run_fig6(ctx), rounds=1, iterations=1
    )
    record(result)
    check_app_time_shapes(result)
