"""Ablation (DESIGN.md §4.5): the graph-reading balance knobs (paper
§IV-B1's command-line weights) — edge-balanced vs node-balanced division
of the input among hosts."""

import numpy as np

from repro.core import CuSP
from repro.experiments.common import ExperimentResult


def test_ablation_read_balance(benchmark, ctx, record):
    def run():
        rows = []
        g = ctx.graph("clueweb")
        for label, node_w, edge_w in (
            ("edge-balanced (default)", 0.0, 1.0),
            ("mixed", 1.0, 1.0),
            ("node-balanced (ablated)", 1.0, 0.0),
        ):
            dg = CuSP(
                16, "CVC", cost_model=ctx.cost_model,
                node_balance_weight=node_w, edge_balance_weight=edge_w,
            ).partition(g)
            reading = dg.breakdown.phase("Graph Reading")
            rows.append(
                {
                    "reading split": label,
                    "reading ms": reading.total * 1e3,
                    "total ms": dg.breakdown.total * 1e3,
                }
            )
        return ExperimentResult(
            experiment="Ablation B",
            title="Reading-phase balance weights on a skewed input (CVC, 16 hosts)",
            columns=["reading split", "reading ms", "total ms"],
            rows=rows,
            notes=[
                "With a skewed degree distribution, node-balanced reading "
                "hands some host far more edges, so the (synchronous) "
                "reading phase waits on the overloaded host.",
            ],
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(result)
    by = {r["reading split"]: r for r in result.rows}
    # Node-balanced reading is slower on a skewed input.
    assert (
        by["node-balanced (ablated)"]["reading ms"]
        > by["edge-balanced (default)"]["reading ms"]
    )
