"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure from the paper.
The regenerated artifact is printed (run pytest with ``-s`` to see it
live) and written to ``benchmarks/results/<experiment>.txt``; the
pytest-benchmark timing wraps the experiment driver itself.

Set ``REPRO_BENCH_SCALE`` (tiny | small | bench) to trade fidelity for
speed; the default ``small`` finishes the full suite in a few minutes.
"""

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    # Keep paper order: table3, fig3, table4, fig4, table5, fig5/6/7, ...
    items.sort(key=lambda it: it.fspath.basename)


@pytest.fixture(scope="session")
def ctx():
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    return ExperimentContext(scale=scale)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record(results_dir):
    """Print an ExperimentResult and persist it under results/."""

    def _record(result):
        text = result.format()
        print("\n" + text)
        slug = result.experiment.lower().replace(" ", "")
        (results_dir / f"{slug}.txt").write_text(text + "\n")
        return result

    return _record
