"""Ablation: MPI vs LCI transport (paper §IV-D1 — the communication
thread can use either; LCI's leaner stack lowers per-message overhead).
Also doubles as a window-size sweep for the streaming-window extension."""

from repro.core import CuSP, WindowedPartitioner
from repro.experiments.common import ExperimentResult
from repro.runtime.cost_model import LCI_TRANSPORT, MPI_TRANSPORT


def test_ablation_transport(benchmark, ctx, record):
    def run():
        rows = []
        g = ctx.graph("uk")
        for name, model in (("MPI", MPI_TRANSPORT), ("LCI", LCI_TRANSPORT)):
            for buffer_size in (0, 8 << 10):
                dg = CuSP(
                    16, "CVC", cost_model=model, buffer_size=buffer_size
                ).partition(g)
                rows.append(
                    {
                        "transport": name,
                        "buffer": "none" if buffer_size == 0 else "8KB",
                        "total ms": dg.breakdown.total * 1e3,
                    }
                )
        return ExperimentResult(
            experiment="Ablation C",
            title="Transport layer (MPI vs LCI) x message buffering (CVC)",
            columns=["transport", "buffer", "total ms"],
            rows=rows,
            notes=[
                "LCI's lower per-message overhead matters most exactly "
                "when buffering is disabled — buffering and a fast "
                "transport are partially substitutable.",
            ],
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(result)
    by = {(r["transport"], r["buffer"]): r["total ms"] for r in result.rows}
    # LCI never slower; its advantage is largest without buffering.
    assert by[("LCI", "none")] <= by[("MPI", "none")]
    assert by[("LCI", "8KB")] <= by[("MPI", "8KB")]
    mpi_gain = by[("MPI", "none")] - by[("MPI", "8KB")]
    lci_gain = by[("LCI", "none")] - by[("LCI", "8KB")]
    assert lci_gain <= mpi_gain


def test_window_size_sweep(benchmark, ctx, record):
    def run():
        rows = []
        # The window's quality leverage shows where proxy presence has
        # not yet saturated: few partitions relative to the clustering
        # structure.  (At higher k every vertex is soon present on
        # several partitions and all placements score alike.)
        from repro.graph import get_dataset

        g = get_dataset("kron", "tiny")
        for window in (1, 8, 64):
            dg = WindowedPartitioner(
                4, window_size=window, cost_model=ctx.cost_model
            ).partition(g)
            rows.append(
                {
                    "window": window,
                    "replication": dg.replication_factor(),
                    "edge balance": dg.edge_balance(),
                    "partition ms": dg.breakdown.total * 1e3,
                }
            )
        return ExperimentResult(
            experiment="Ablation D",
            title="Streaming-window size vs quality (ADWISE-style extension)",
            columns=["window", "replication", "edge balance", "partition ms"],
            rows=rows,
            notes=[
                "Larger windows buy lower replication for more "
                "partitioning compute — the trade the streaming-window "
                "class (paper §II-B2) exists to offer.",
            ],
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(result)
    reps = result.column("replication")
    assert reps[-1] <= reps[0]  # window=64 at least as good as window=1
