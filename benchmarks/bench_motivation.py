"""Motivation-rooted supplementary benches: end-to-end ratio, HVC
orientation, straggler sensitivity (Supplementary D/E/F)."""

from repro.experiments import motivation


def test_end_to_end_ratio(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: motivation.run_end_to_end(ctx), rounds=1, iterations=1
    )
    record(result)
    by = {r["partitioner"]: r for r in result.rows}
    # The paper's motivating observation: the offline partitioner's
    # preprocessing rivals (here: exceeds) the app time, while streaming
    # partitioning costs a fraction of it.
    assert by["XtraPulp"]["partition/app ratio"] > by["EEC"]["partition/app ratio"]
    assert by["EEC"]["end-to-end ms"] < by["XtraPulp"]["end-to-end ms"]


def test_hvc_orientation(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: motivation.run_orientation(ctx), rounds=1, iterations=1
    )
    record(result)
    csr, csc = result.rows
    # On in-skewed crawls, PowerLyra's CSC orientation (in-degree
    # thresholding) yields the lower replication factor.
    assert csc["replication"] < csr["replication"]


def test_straggler_sensitivity(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: motivation.run_straggler(ctx), rounds=1, iterations=1
    )
    record(result)
    for row in result.rows:
        # The slow host hurts, but never worse than its raw speed deficit.
        assert 1.0 < row["slowdown"] <= 4.0, row
