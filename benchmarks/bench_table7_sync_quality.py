"""Table VII: application execution time with SVC partitions built with
different numbers of synchronization rounds."""

from repro.experiments import table67


def test_table7_sync_quality(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: table67.run_table7(ctx), rounds=1, iterations=1
    )
    record(result)
    # The paper's takeaway is a *negative* result: more rounds do not
    # monotonically improve application time — effects are mixed by
    # benchmark and input.  Assert the weaker invariant that runtimes
    # stay within a sane band across round counts (no order-of-magnitude
    # quality cliffs), which is exactly what Table VII shows.
    for row in result.rows:
        times = [row[c] for c in result.columns if c.endswith("rounds")]
        assert max(times) < 3.0 * min(times), row
