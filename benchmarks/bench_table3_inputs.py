"""Table III: input graphs and their properties."""

from repro.experiments import table3


def test_table3_inputs(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: table3.run(ctx), rounds=1, iterations=1
    )
    record(result)
    # Sanity: all five inputs present with the paper's |E|/|V| ratios.
    assert [r["graph"] for r in result.rows] == [
        "kron", "gsh", "clueweb", "uk", "wdc"
    ]
    for row in result.rows:
        assert abs(row["|E|/|V|"] - row["paper |E|/|V|"]) < 1.5
