"""Supplementary H bench: per-host memory and the Figure 3 OOM gaps."""

from repro.experiments import memory_study


def test_memory_study(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: memory_study.run_memory_study(ctx, hosts=[2, 4, 8, 16]),
        rounds=1, iterations=1,
    )
    record(result)
    first, last = result.rows[0], result.rows[-1]
    # The paper's pattern: XtraPulp OOMs at the lowest host count where
    # CuSP fits; at the largest host count everyone fits.
    assert first["XtraPulp fits"] == "OOM"
    assert first["EEC fits"] == "ok"
    assert last["XtraPulp fits"] == "ok"
    # Footprints shrink with hosts for every system.
    assert last["XtraPulp MB/host"] < first["XtraPulp MB/host"]
    assert last["EEC MB/host"] < first["EEC MB/host"]
