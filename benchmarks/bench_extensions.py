"""Extension policies head-to-head: the Table I streaming vertex-cut
family (DBH, PowerGraph greedy, HDRF) and the streaming-window
partitioner against the paper's six, on one input."""

from repro.core import CuSP, WindowedPartitioner, make_policy
from repro.experiments.common import ExperimentResult
from repro.graph import get_dataset
from repro.metrics import measure_quality


def test_extension_policies(benchmark, ctx, record):
    def run():
        # Per-edge Python scoring makes the stateful vertex-cuts the
        # slowest partitioners here, so use the tiny preset.
        g = get_dataset("kron", "tiny")
        rows = []
        for name in ("EEC", "HVC", "CVC", "DBH", "PGC", "HDRF"):
            dg = CuSP(
                8, make_policy(name, degree_threshold=20),
                cost_model=ctx.cost_model,
            ).partition(g)
            dg.validate(g)
            q = measure_quality(dg, g)
            rows.append(
                {
                    "partitioner": name,
                    "replication": q.replication_factor,
                    "edge balance": q.edge_balance,
                    "cut fraction": q.cut_fraction,
                }
            )
        wdg = WindowedPartitioner(
            8, window_size=32, cost_model=ctx.cost_model
        ).partition(g)
        wdg.validate(g)
        q = measure_quality(wdg, g)
        rows.append(
            {
                "partitioner": "Window(32)",
                "replication": q.replication_factor,
                "edge balance": q.edge_balance,
                "cut fraction": q.cut_fraction,
            }
        )
        return ExperimentResult(
            experiment="Extensions",
            title="Table I streaming family + window partitioner (kron, 8 hosts)",
            columns=["partitioner", "replication", "edge balance",
                     "cut fraction"],
            rows=rows,
            notes=[
                "All five Table I streaming vertex-cut classes (plus the "
                "streaming-window class of §II-B2) run through the same "
                "CuSP interface — the paper's generality claim, "
                "demonstrated.",
            ],
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(result)
    by = {r["partitioner"]: r for r in result.rows}
    # Every partitioner produced a sane vertex-cut.
    for name, row in by.items():
        assert 1.0 <= row["replication"] <= 8.0, name
    # HDRF's lambda keeps it the best-balanced of the stateful cuts.
    assert by["HDRF"]["edge balance"] <= by["HVC"]["edge balance"]
