"""Table VI: SVC partitioning time vs number of synchronization rounds."""

from repro.experiments import table67


def test_table6_sync_rounds(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: table67.run_table6(ctx), rounds=1, iterations=1
    )
    record(result)
    for row in result.rows:
        # Roughly flat through 100 rounds...
        assert row["100 rounds"] < 2.0 * row["1 rounds"], row
        # ...with a visible increase by 1000 rounds.
        assert row["1000 rounds"] > 1.5 * row["10 rounds"], row
