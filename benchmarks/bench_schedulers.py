"""Supplementary G bench: scheduling-policy study."""

from repro.experiments import schedulers


def test_schedulers(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: schedulers.run_schedulers(ctx), rounds=1, iterations=1
    )
    record(result)
    by = {r["scheduler"]: r for r in result.rows}
    # Identical-answer assertion already ran inside the driver; here check
    # the profile claims: delta-stepping trades more rounds for no comm
    # blowup, and every scheduler completed.
    assert by["sssp delta-stepping"]["rounds"] >= by["sssp bellman-ford"]["rounds"]
    assert by["sssp delta-stepping"]["comm KB"] <= 1.5 * by["sssp bellman-ford"]["comm KB"]
    assert all(r["time ms"] > 0 for r in result.rows)
