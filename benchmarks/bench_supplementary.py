"""Supplementary experiments: structural quality table and vertex-order
sensitivity (see repro.experiments.supplementary)."""

from repro.experiments import supplementary


def test_supp_quality_table(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: supplementary.run_quality_table(ctx), rounds=1, iterations=1
    )
    record(result)
    by = {r["policy"]: r for r in result.rows}
    # 2-D cuts: fewest communication partners and lowest replication among
    # the paper's six policies.
    assert by["CVC"]["max partners"] < by["HVC"]["max partners"]
    assert by["CVC"]["replication"] < by["EEC"]["replication"]
    assert by["SVC"]["max partners"] < by["GVC"]["max partners"]
    # Edge-cuts have tight edge balance; HVC trades balance for hub
    # spreading.
    assert by["EEC"]["edge balance"] < by["HVC"]["edge balance"]


def test_supp_vertex_order(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: supplementary.run_vertex_order(ctx), rounds=1, iterations=1
    )
    record(result)
    rep = {
        (r["vertex order"], r["policy"]): r["replication"] for r in result.rows
    }
    for policy in ("EEC", "CVC"):
        assert (
            rep[("row-major order (locality)", policy)]
            < rep[("random order", policy)]
        )
