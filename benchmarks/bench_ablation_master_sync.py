"""Ablation (DESIGN.md §4.3-4.4): the §IV-D5 master-synchronization
optimizations — request-driven assignment exchange and pure-function
replication — versus the naive broadcast-everything alternative."""

import numpy as np

from repro.core import CuSP
from repro.experiments.common import ExperimentResult
from repro.graph import grid_graph


def test_ablation_master_sync(benchmark, ctx, record):
    def run():
        rows = []
        # Sparse structured input: the regime the optimization targets.
        g = grid_graph(60, 60)
        for policy, label in (("CVC", "pure rule (CVC)"), ("SVC", "stateful rule (SVC)")):
            for elide in (True, False):
                dg = CuSP(
                    16, policy, cost_model=ctx.cost_model, sync_rounds=4,
                    elide_master_communication=elide,
                ).partition(g)
                rows.append(
                    {
                        "configuration": label,
                        "sync elision": "on" if elide else "off (ablated)",
                        "master-phase KB": dg.breakdown.phase(
                            "Master Assignment"
                        ).comm_bytes / 1024,
                        "master-phase ms": dg.breakdown.phase(
                            "Master Assignment"
                        ).total * 1e3,
                        "total ms": dg.breakdown.total * 1e3,
                    }
                )
        return ExperimentResult(
            experiment="Ablation A",
            title="Master-synchronization elision (paper §IV-D5)",
            columns=["configuration", "sync elision", "master-phase KB",
                     "master-phase ms", "total ms"],
            rows=rows,
            notes=[
                "Pure rules with elision send zero master-phase bytes "
                "(replicated computation); stateful rules send only "
                "requested assignments.",
            ],
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(result)
    by = {(r["configuration"], r["sync elision"]): r for r in result.rows}
    # Pure rule: elision removes all master communication.
    assert by[("pure rule (CVC)", "on")]["master-phase KB"] == 0
    assert by[("pure rule (CVC)", "off (ablated)")]["master-phase KB"] > 0
    # Stateful rule: request-driven exchange sends less than broadcast-all.
    assert (
        by[("stateful rule (SVC)", "on")]["master-phase KB"]
        < by[("stateful rule (SVC)", "off (ablated)")]["master-phase KB"]
    )
