"""Figure 5: application execution time on 8 hosts (paper: 64)."""

from repro.experiments import fig56
from repro.metrics import geomean


def check_app_time_shapes(result):
    """The qualitative claims shared by Figures 5 and 6."""
    # Edge-cuts are comparable: EEC vs XtraPulp within 2x either way
    # on the geomean.
    edge_cut_ratio = geomean(
        [r["EEC"] / r["XtraPulp"] for r in result.rows]
    )
    assert 0.5 < edge_cut_ratio < 2.0
    # General vertex-cuts (HVC/GVC) are the slowest family on average.
    means = {
        p: geomean(result.column(p))
        for p in ("XtraPulp", "EEC", "HVC", "CVC", "FEC", "GVC", "SVC")
    }
    structured = min(means[p] for p in ("EEC", "CVC", "FEC", "SVC"))
    assert means["HVC"] > structured
    assert means["GVC"] > structured
    # CVC beats HVC (the invariant pays off).
    assert means["CVC"] < means["HVC"]


def test_fig5_app_time(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: fig56.run_fig5(ctx), rounds=1, iterations=1
    )
    record(result)
    check_app_time_shapes(result)
