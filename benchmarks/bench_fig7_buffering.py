"""Figure 7: CVC partitioning time vs message batch size."""

from repro.experiments import fig7


def test_fig7_buffering(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: fig7.run(ctx), rounds=1, iterations=1)
    record(result)
    graphs = [c for c in result.columns if c != "batch size (KB)"]
    unbuffered = result.rows[0]
    largest = result.rows[-1]
    mid = result.rows[len(result.rows) // 2]
    for g in graphs:
        # Sending immediately (batch 0) is substantially slower.
        assert unbuffered[g] > 1.5 * largest[g], g
        # The curve flattens: past a modest buffer there is little gain.
        assert mid[g] < 1.25 * largest[g], g
