"""Figure 3: partitioning time, XtraPulp vs the six CuSP policies."""

from repro.experiments import fig3
from repro.experiments.common import CUSP_POLICIES
from repro.metrics import geomean


def test_fig3_partition_time(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: fig3.run(ctx), rounds=1, iterations=1)
    record(result)
    # Headline shape: every CuSP policy partitions faster than XtraPulp
    # on (geomean over) every graph/host configuration.
    for policy in CUSP_POLICIES:
        ratios = [r["XtraPulp"] / r[policy] for r in result.rows]
        assert geomean(ratios) > 1.0, f"{policy} not faster than XtraPulp"
    # EEC is the fastest CuSP policy on average (paper: 4.7x the others).
    eec = geomean(result.column("EEC"))
    for policy in CUSP_POLICIES:
        assert geomean(result.column(policy)) >= eec
    # ContiguousEB-master policies beat FennelEB-master policies.
    ceb = geomean(
        [r[p] for r in result.rows for p in ("EEC", "HVC", "CVC")]
    )
    feb = geomean(
        [r[p] for r in result.rows for p in ("FEC", "GVC", "SVC")]
    )
    assert ceb < feb
