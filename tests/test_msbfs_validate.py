"""Tests for multi-source BFS and the ``cusp validate`` subcommand."""

import numpy as np
import pytest

from repro.analytics import BFS, Engine, INF, MultiSourceBFS, msbfs_reference
from repro.cli import main
from repro.core import CuSP, save_partitions
from repro.graph import CSRGraph, erdos_renyi, get_dataset, path_graph, write_gr


@pytest.fixture(scope="module")
def crawl():
    return get_dataset("gsh", "tiny")


class TestMultiSourceBFS:
    @pytest.mark.parametrize("policy", ["EEC", "CVC", "HVC", "SVC"])
    def test_matches_reference(self, policy, crawl):
        sources = [0, 5, 17, 101, 333]
        dg = CuSP(4, policy, sync_rounds=2).partition(crawl)
        res = Engine(dg).run(MultiSourceBFS(sources))
        assert np.array_equal(res.values, msbfs_reference(crawl, sources))

    def test_consistent_with_single_bfs(self, crawl):
        """Bit i of the mask == reachability according to plain BFS."""
        sources = [3, 50]
        dg = CuSP(3, "CVC").partition(crawl)
        engine = Engine(dg)
        masks = engine.run(MultiSourceBFS(sources)).values
        for bit, s in enumerate(sources):
            dist = engine.run(BFS(s)).values
            reachable = dist < INF
            from_mask = (masks >> np.uint64(bit)) & np.uint64(1)
            assert np.array_equal(from_mask.astype(bool), reachable)

    def test_max_64_sources(self, crawl):
        sources = list(range(64))
        dg = CuSP(2, "EEC").partition(crawl)
        res = Engine(dg).run(MultiSourceBFS(sources))
        assert np.array_equal(res.values, msbfs_reference(crawl, sources))

    def test_source_limits(self):
        with pytest.raises(ValueError):
            MultiSourceBFS([])
        with pytest.raises(ValueError):
            MultiSourceBFS(list(range(65)))
        with pytest.raises(ValueError):
            MultiSourceBFS([1, 1])

    def test_path_graph_reachability(self):
        g = path_graph(10)
        dg = CuSP(2, "EEC").partition(g)
        res = Engine(dg).run(MultiSourceBFS([0, 9]))
        # Source 0 (bit 0) reaches everyone; source 9 (bit 1) only itself.
        assert np.all((res.values & np.uint64(1)).astype(bool))
        bit1 = (res.values >> np.uint64(1)) & np.uint64(1)
        assert bit1.sum() == 1 and bit1[9] == 1

    def test_disconnected(self):
        g = CSRGraph.from_edges([0], [1], num_nodes=4)
        dg = CuSP(2, "EEC").partition(g)
        res = Engine(dg).run(MultiSourceBFS([0]))
        assert res.values.astype(bool).tolist() == [True, True, False, False]


class TestValidateCommand:
    @pytest.fixture()
    def saved(self, tmp_path):
        g = erdos_renyi(120, 900, seed=8)
        path = tmp_path / "g.gr"
        write_gr(g, path)
        dg = CuSP(3, "CVC").partition(g)
        save_partitions(dg, tmp_path / "parts")
        return tmp_path, g

    def test_validate_ok(self, saved, capsys):
        tmp_path, _ = saved
        assert main(["validate", str(tmp_path / "parts"),
                     str(tmp_path / "g.gr")]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_without_graph(self, saved, capsys):
        tmp_path, _ = saved
        assert main(["validate", str(tmp_path / "parts")]) == 0

    def test_validate_detects_corruption(self, saved, capsys):
        import numpy as np

        tmp_path, _ = saved
        masters = np.load(tmp_path / "parts" / "masters.npy")
        masters[0] = (masters[0] + 1) % 3  # move a master illegally
        np.save(tmp_path / "parts" / "masters.npy", masters)
        assert main(["validate", str(tmp_path / "parts")]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_validate_detects_wrong_graph(self, saved, tmp_path, capsys):
        root, _ = saved
        other = erdos_renyi(120, 900, seed=9)
        write_gr(other, root / "other.gr")
        assert main(["validate", str(root / "parts"),
                     str(root / "other.gr")]) == 1
