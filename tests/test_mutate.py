"""Tests for the analyzer mutation campaign (repro.analysis.mutate).

The operator layer is pinned hard — text splices that parse, preserve
line counts, and carry stable ids — because every downstream guarantee
(suppression governance inside mutants, byte-stable matrices, triage
keyed by id) rests on it.  The campaign driver's selection and report
rendering are pinned for determinism; the end-to-end probe run is
exercised by the CI ``mutation`` job, not here.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.analysis.mutate import (
    TRIAGE,
    CampaignReport,
    MutantResult,
    all_operators,
    apply_site,
    collect_mutants,
)
from repro.analysis.mutate.campaign import select_mutants
from repro.analysis.mutate.triage import VERDICTS

PKG = Path(__file__).parent.parent / "src" / "repro"


@pytest.fixture(scope="module")
def mutants():
    return collect_mutants(PKG)


class TestOperatorRegistry:
    def test_every_operator_is_named_and_classed(self):
        ops = all_operators()
        assert len(ops) >= 10
        for name, op in ops.items():
            assert name == op.name
            assert op.fault_class
            assert op.description

    def test_every_operator_generates_at_least_one_site(self, mutants):
        generated = {m.operator for m in mutants}
        missing = set(all_operators()) - generated
        assert not missing, (
            f"operators with zero sites against src/repro: {sorted(missing)}"
        )


class TestSpliceInvariants:
    def test_every_mutant_parses(self, mutants):
        for m in mutants:
            text = (PKG / m.rel).read_text()
            mutated = apply_site(text, m.site)
            try:
                ast.parse(mutated)
            except SyntaxError as exc:
                pytest.fail(f"{m.id} does not parse: {exc}")

    def test_every_mutant_preserves_line_count(self, mutants):
        for m in mutants:
            text = (PKG / m.rel).read_text()
            mutated = apply_site(text, m.site)
            grown = len(m.site.append.splitlines()) if m.site.append else 0
            assert mutated.count("\n") == text.count("\n") + grown, m.id

    def test_every_mutant_actually_changes_the_text(self, mutants):
        for m in mutants:
            text = (PKG / m.rel).read_text()
            assert apply_site(text, m.site) != text, m.id

    def test_targets_stay_out_of_the_analysis_tree(self, mutants):
        for m in mutants:
            assert not m.rel.startswith("analysis/"), (
                f"{m.id} mutates the detector stack itself"
            )


class TestMutantIds:
    def test_ids_are_stable_across_collections(self, mutants):
        again = collect_mutants(PKG)
        assert [m.id for m in mutants] == [m.id for m in again]

    def test_ids_are_unique(self, mutants):
        ids = [m.id for m in mutants]
        assert len(ids) == len(set(ids))

    def test_id_format(self, mutants):
        for m in mutants:
            op, rest = m.id.split(":", 1)
            rel, ordinal = rest.rsplit("#", 1)
            assert op == m.operator
            assert rel == m.rel
            assert ordinal.isdigit()

    def test_ordinals_follow_document_order(self, mutants):
        by_file: dict[tuple[str, str], list] = {}
        for m in mutants:
            by_file.setdefault((m.operator, m.rel), []).append(m)
        for group in by_file.values():
            ordinals = [int(m.id.rsplit("#", 1)[1]) for m in group]
            positions = [(m.site.line, m.site.col) for m in group]
            assert ordinals == sorted(ordinals)
            assert positions == sorted(positions)


class TestSelection:
    def test_selection_is_deterministic(self, mutants):
        a = select_mutants(mutants, 24, 7)
        b = select_mutants(mutants, 24, 7)
        assert [m.id for m in a] == [m.id for m in b]

    def test_selection_respects_budget(self, mutants):
        assert len(select_mutants(mutants, 10, 7)) == 10
        assert len(select_mutants(mutants, None, 7)) == len(mutants)
        big = select_mutants(mutants, 10_000, 7)
        assert len(big) == len(mutants)

    def test_selection_is_stratified(self, mutants):
        operators = {m.operator for m in mutants}
        chosen = select_mutants(mutants, len(operators), 7)
        # one per operator before any second helping
        assert len({m.operator for m in chosen}) == len(operators)

    def test_seed_changes_the_selection(self, mutants):
        a = {m.id for m in select_mutants(mutants, 12, 7)}
        b = {m.id for m in select_mutants(mutants, 12, 8)}
        assert a != b


class TestTriageRegistry:
    def test_verdicts_are_legal(self):
        for mutant_id, entry in TRIAGE.items():
            assert entry.verdict in VERDICTS, mutant_id
            assert entry.reason, mutant_id

    def test_entries_name_real_mutants(self, mutants):
        known = {m.id for m in mutants}
        stale = set(TRIAGE) - known
        assert not stale, (
            f"triage entries for mutants that no longer exist: {sorted(stale)}"
        )


def _result(mutant, caught_detectors=(), findings=()):
    detectors = {
        name: {
            "caught": name in caught_detectors,
            "findings": list(findings) if name in caught_detectors else [],
        }
        for name in ("lint", "deep", "contracts", "dynamic")
    }
    return MutantResult(
        mutant=mutant, detectors=detectors, triage=TRIAGE.get(mutant.id)
    )


class TestReport:
    def make_report(self, mutants, n=6):
        chosen = select_mutants(mutants, n, 7)
        results = [
            _result(m, ("lint",) if i % 2 == 0 else (), ("rule@f.py:1",))
            for i, m in enumerate(chosen)
        ]
        return CampaignReport(
            results=results, seed=7, budget=n, sites_found=len(mutants)
        )

    def test_matrix_is_byte_stable(self, mutants):
        a = self.make_report(mutants).to_json()
        b = self.make_report(mutants).to_json()
        assert a == b

    def test_matrix_is_input_order_free(self, mutants):
        report = self.make_report(mutants)
        shuffled = CampaignReport(
            results=list(reversed(report.results)),
            seed=7,
            budget=6,
            sites_found=report.sites_found,
        )
        assert report.to_json() == shuffled.to_json()

    def test_matrix_rows_are_sorted_by_id(self, mutants):
        doc = json.loads(self.make_report(mutants).to_json())
        ids = [row["id"] for row in doc["rows"]]
        assert ids == sorted(ids)

    def test_detection_rate_excludes_equivalents(self, mutants):
        chosen = select_mutants(mutants, 4, 7)
        results = [
            _result(chosen[0], ("dynamic",), ("divergence:GVC",)),
            _result(chosen[1], ("lint", "deep"), ("r@f.py:2",)),
            _result(chosen[2]),
            _result(chosen[3]),
        ]
        # hand-triage the two survivors: one excluded, one accepted
        from repro.analysis.mutate.triage import TriageEntry

        results[2] = MutantResult(
            mutant=chosen[2],
            detectors=results[2].detectors,
            triage=TriageEntry("equivalent", "test"),
        )
        results[3] = MutantResult(
            mutant=chosen[3],
            detectors=results[3].detectors,
            triage=TriageEntry("accepted", "test"),
        )
        report = CampaignReport(results=results, sites_found=len(mutants))
        assert report.detection_rate() == pytest.approx(2 / 3)
        assert report.ok()  # no untriaged survivors
        assert not report.ok(strict=True)  # 66% < 90%

    def test_untriaged_survivor_fails_the_run(self, mutants):
        chosen = select_mutants(mutants, 1, 7)
        # strip any real triage entry to simulate a fresh blind spot
        result = MutantResult(
            mutant=chosen[0],
            detectors={
                name: {"caught": False, "findings": []}
                for name in ("lint", "deep", "contracts", "dynamic")
            },
            triage=None,
        )
        report = CampaignReport(results=[result], sites_found=len(mutants))
        assert report.untriaged
        assert not report.ok()
