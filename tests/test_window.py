"""Tests for the streaming-window (ADWISE-style) partitioner extension."""

import numpy as np
import pytest

from repro.core import WindowedPartitioner
from repro.graph import CSRGraph, erdos_renyi, get_dataset


@pytest.fixture(scope="module")
def crawl():
    return get_dataset("kron", "tiny")


class TestCorrectness:
    @pytest.mark.parametrize("window", [1, 4, 32])
    def test_valid_partition(self, window, crawl):
        dg = WindowedPartitioner(4, window_size=window).partition(crawl)
        dg.validate(crawl)

    @pytest.mark.parametrize("k", [1, 2, 3, 8])
    def test_host_counts(self, k, crawl):
        dg = WindowedPartitioner(k, window_size=8).partition(crawl)
        dg.validate(crawl)
        assert dg.num_partitions == k

    def test_empty_graph(self):
        g = CSRGraph.empty(6)
        dg = WindowedPartitioner(2).partition(g)
        dg.validate(g)

    def test_weighted_graph(self):
        g = erdos_renyi(40, 200, seed=1).with_random_weights(seed=1)
        dg = WindowedPartitioner(3, window_size=8).partition(g)
        dg.validate(g)
        assert dg.to_global_graph() == g

    def test_deterministic(self, crawl):
        a = WindowedPartitioner(4, window_size=16).partition(crawl)
        b = WindowedPartitioner(4, window_size=16).partition(crawl)
        assert np.array_equal(a.masters, b.masters)
        for pa, pb in zip(a.partitions, b.partitions):
            assert pa.local_graph == pb.local_graph

    def test_policy_name_mentions_window(self, crawl):
        dg = WindowedPartitioner(2, window_size=7).partition(crawl)
        assert "7" in dg.policy_name

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WindowedPartitioner(0)
        with pytest.raises(ValueError):
            WindowedPartitioner(2, window_size=0)
        with pytest.raises(ValueError):
            WindowedPartitioner(2, balance_weight=-1)


class TestQuality:
    def test_larger_window_improves_replication(self, crawl):
        """ADWISE's central claim: a bigger window buys better placement
        at the same balance pressure."""
        small = WindowedPartitioner(4, window_size=1).partition(crawl)
        large = WindowedPartitioner(4, window_size=64).partition(crawl)
        assert large.replication_factor() <= small.replication_factor()

    def test_balance_pressure_works(self, crawl):
        dg = WindowedPartitioner(4, window_size=16, balance_weight=8.0).partition(crawl)
        assert dg.edge_balance() < 1.5

    def test_zero_balance_weight_clusters_hard(self, crawl):
        """Without the balance term everything piles onto one partition."""
        dg = WindowedPartitioner(4, window_size=8, balance_weight=0.0).partition(crawl)
        counts = dg.edge_counts()
        assert counts.max() > 0.9 * crawl.num_edges

    def test_breakdown_phases_present(self, crawl):
        dg = WindowedPartitioner(4).partition(crawl)
        names = [p.name for p in dg.breakdown.phases]
        assert "Graph Reading" in names
        assert "Graph Construction" in names

    def test_analytics_run_on_window_partitions(self, crawl):
        from repro.analytics import BFS, Engine, bfs_reference, default_source

        src = default_source(crawl)
        dg = WindowedPartitioner(4, window_size=16).partition(crawl)
        res = Engine(dg).run(BFS(src))
        assert np.array_equal(res.values, bfs_reference(crawl, src))
