"""Tests for graph transforms and distributed triangle counting."""

import numpy as np
import pytest

from repro.analytics import count_triangles, triangles_reference
from repro.core import CuSP, WindowedPartitioner
from repro.graph import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    get_dataset,
    grid_graph,
    largest_wcc,
    path_graph,
    relabel,
    relabel_by_degree,
    remove_self_loops,
    shuffle_labels,
    simplify,
    star_graph,
)


class TestRelabel:
    def test_identity(self):
        g = erdos_renyi(20, 60, seed=1)
        assert relabel(g, np.arange(20)) == g

    def test_preserves_structure(self):
        g = erdos_renyi(25, 80, seed=2)
        rng = np.random.default_rng(3)
        perm = rng.permutation(25)
        r = relabel(g, perm)
        assert r.num_edges == g.num_edges
        # degree multiset preserved
        assert sorted(r.out_degree()) == sorted(g.out_degree())
        # edges map exactly
        assert {(perm[a], perm[b]) for a, b in g.edge_set()} == r.edge_set()

    def test_preserves_weights(self):
        g = erdos_renyi(10, 30, seed=4).with_random_weights(seed=4)
        r = relabel(g, np.arange(9, -1, -1))
        assert sorted(r.edge_data) == sorted(g.edge_data)

    def test_rejects_non_bijection(self):
        g = erdos_renyi(5, 10, seed=5)
        with pytest.raises(ValueError):
            relabel(g, np.zeros(5, dtype=np.int64))
        with pytest.raises(ValueError):
            relabel(g, np.arange(4))

    def test_relabel_by_degree_hubs_first(self):
        g = star_graph(10)
        r = relabel_by_degree(g, "out")
        assert r.out_degree(0) == 10  # the hub got id 0

    def test_relabel_by_degree_in(self):
        g = star_graph(10).transpose()
        r = relabel_by_degree(g, "in")
        assert r.in_degree()[0] == 10

    def test_relabel_by_degree_invalid(self):
        with pytest.raises(ValueError):
            relabel_by_degree(CSRGraph.empty(1), "sideways")

    def test_shuffle_deterministic(self):
        g = erdos_renyi(30, 90, seed=6)
        assert shuffle_labels(g, seed=7) == shuffle_labels(g, seed=7)
        assert shuffle_labels(g, seed=7) != shuffle_labels(g, seed=8)


class TestCleanup:
    def test_remove_self_loops(self):
        g = CSRGraph.from_edges([0, 1, 1], [0, 1, 0], num_nodes=2)
        r = remove_self_loops(g)
        assert r.edge_set() == {(1, 0)}

    def test_simplify(self):
        g = CSRGraph.from_edges([0, 0, 0, 1], [1, 1, 0, 0], num_nodes=2)
        s = simplify(g)
        assert s.edge_set() == {(0, 1), (1, 0)}
        assert s.num_edges == 2

    def test_largest_wcc(self):
        # component {0,1,2} (3 nodes) and {3,4} (2 nodes)
        g = CSRGraph.from_edges([0, 1, 3], [1, 2, 4], num_nodes=5)
        sub, ids = largest_wcc(g)
        assert ids.tolist() == [0, 1, 2]
        assert sub.num_nodes == 3
        assert sub.edge_set() == {(0, 1), (1, 2)}

    def test_largest_wcc_whole_graph(self):
        g = cycle_graph(6)
        sub, ids = largest_wcc(g)
        assert sub.num_nodes == 6
        assert ids.tolist() == list(range(6))

    def test_largest_wcc_empty(self):
        sub, ids = largest_wcc(CSRGraph.empty(0))
        assert ids.size == 0


class TestTriangles:
    def test_reference_known_counts(self):
        assert triangles_reference(complete_graph(4)) == 4
        assert triangles_reference(complete_graph(5)) == 10
        assert triangles_reference(cycle_graph(3)) == 1
        assert triangles_reference(cycle_graph(5)) == 0
        assert triangles_reference(path_graph(10)) == 0
        assert triangles_reference(grid_graph(4, 4)) == 0

    @pytest.mark.parametrize("policy", ["EEC", "CVC", "HVC", "SVC"])
    def test_distributed_matches_reference(self, policy):
        g = get_dataset("kron", "tiny").symmetrize()
        dg = CuSP(4, policy, sync_rounds=2).partition(g)
        res = count_triangles(dg)
        assert res.count == triangles_reference(g)

    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_host_counts(self, k):
        g = erdos_renyi(60, 500, seed=9).symmetrize()
        dg = CuSP(k, "CVC").partition(g)
        assert count_triangles(dg).count == triangles_reference(g)

    def test_window_partitions_too(self):
        g = erdos_renyi(50, 300, seed=10).symmetrize()
        dg = WindowedPartitioner(3, window_size=8).partition(g)
        assert count_triangles(dg).count == triangles_reference(g)

    def test_handles_directed_input(self):
        """Orientation dedups reverse edges even on raw directed input."""
        g = erdos_renyi(40, 200, seed=11)
        dg = CuSP(3, "EEC").partition(g)
        assert count_triangles(dg).count == triangles_reference(g)

    def test_phases_and_time(self):
        g = complete_graph(10)
        dg = CuSP(3, "CVC").partition(g)
        res = count_triangles(dg)
        assert res.count == 120  # C(10,3)
        assert res.time > 0
        assert [p.name for p in res.breakdown.phases] == [
            "Orient", "Gather", "Probe"
        ]

    def test_empty_graph(self):
        g = CSRGraph.empty(5)
        dg = CuSP(2, "EEC").partition(g)
        assert count_triangles(dg).count == 0
