"""Edge-case coverage for ``check_csr`` (``repro.core.validate``).

``CSRGraph.__post_init__`` rejects most malformed inputs at construction
time, so the malformed cases here corrupt a valid instance's arrays
after the fact — exactly the situation ``check_csr`` exists to catch
(bugs that scribble on a graph mid-pipeline).
"""

from types import SimpleNamespace

import numpy as np

from repro.core.validate import check_csr
from repro.graph import CSRGraph


def _valid_graph():
    return CSRGraph.from_edges([0, 1, 2], [1, 2, 0], num_nodes=3)


class TestValidEdgeCases:
    def test_empty_graph(self):
        g = CSRGraph.from_edges([], [], num_nodes=0)
        assert g.num_nodes == 0 and g.num_edges == 0
        assert check_csr(g) == []

    def test_nodes_but_no_edges(self):
        g = CSRGraph.from_edges([], [], num_nodes=5)
        assert check_csr(g) == []

    def test_single_vertex(self):
        g = CSRGraph.from_edges([], [], num_nodes=1)
        assert g.num_nodes == 1
        assert check_csr(g) == []

    def test_single_vertex_with_self_loop(self):
        g = CSRGraph.from_edges([0], [0], num_nodes=1)
        assert g.num_edges == 1
        assert check_csr(g) == []

    def test_self_loops(self):
        g = CSRGraph.from_edges([0, 1, 2, 2], [0, 1, 2, 0], num_nodes=3)
        assert check_csr(g) == []

    def test_duplicate_edges_kept(self):
        g = CSRGraph.from_edges([0, 0, 0, 1], [1, 1, 1, 2], num_nodes=3)
        assert g.num_edges == 4
        assert check_csr(g) == []

    def test_duplicate_edges_deduped(self):
        g = CSRGraph.from_edges(
            [0, 0, 0, 1], [1, 1, 1, 2], num_nodes=3, dedup=True
        )
        assert g.num_edges == 2
        assert check_csr(g) == []

    def test_weighted_graph(self):
        g = CSRGraph.from_edges(
            [0, 1], [1, 0], num_nodes=2, edge_data=[1.5, 2.5]
        )
        assert check_csr(g) == []


class TestMalformedGraphs:
    def test_indptr_length_mismatch(self):
        # num_nodes is derived from indptr on the real class, so this
        # inconsistency needs a stand-in with an independent node count.
        fake = SimpleNamespace(
            indptr=np.array([0, 1], dtype=np.int64),
            indices=np.array([0], dtype=np.int64),
            num_nodes=3,
            is_weighted=False,
            edge_data=None,
        )
        errors = check_csr(fake, label="fake")
        assert len(errors) == 1
        assert "want num_nodes + 1" in errors[0]
        assert errors[0].startswith("fake:")

    def test_nonzero_first_pointer(self):
        g = _valid_graph()
        g.indptr[0] = 1
        errors = check_csr(g)
        assert any("indptr[0]" in e for e in errors)

    def test_decreasing_indptr(self):
        g = _valid_graph()
        g.indptr[1] = 3
        assert any("non-decreasing" in e for e in check_csr(g))

    def test_last_pointer_vs_edge_count(self):
        g = _valid_graph()
        g.indices = g.indices[:-1]
        assert any("edges stored" in e for e in check_csr(g))

    def test_endpoint_out_of_range_high(self):
        g = _valid_graph()
        g.indices[0] = 99
        errors = check_csr(g)
        assert any("outside" in e for e in errors)

    def test_endpoint_negative(self):
        g = _valid_graph()
        g.indices[0] = -1
        assert any("outside" in e for e in check_csr(g))

    def test_weight_count_mismatch(self):
        g = CSRGraph.from_edges(
            [0, 1], [1, 0], num_nodes=2, edge_data=[1.0, 2.0]
        )
        g.edge_data = g.edge_data[:-1]
        assert any("weights for" in e for e in check_csr(g))

    def test_multiple_violations_all_reported(self):
        g = _valid_graph()
        g.indptr[0] = 1
        g.indices[0] = -1
        assert len(check_csr(g)) >= 2

    def test_label_prefixes_every_error(self):
        g = _valid_graph()
        g.indices[0] = -1
        for error in check_csr(g, label="host 2 local"):
            assert error.startswith("host 2 local:")
