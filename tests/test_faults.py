"""Fault injection and crash recovery (``-m faults``).

The headline guarantee under test: a partitioning run with injected
faults — transient send failures, message drops/duplication, slow hosts,
host crashes with checkpoint replay — produces a partition *identical*
to the fault-free run (same masters, same edge assignment), with the
recovery work visible in the simulated cost breakdown.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core import CuSP, PHASE_NAMES, check_partition, save_partitions
from repro.graph import erdos_renyi, rmat, write_gr
from repro.runtime.comm import Communicator
from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    FaultReport,
    HostCrash,
    HostCrashError,
    RecoveryManager,
    SendRetriesExhausted,
    UnrecoverableClusterError,
)

from .strategies import fault_plans, graphs

pytestmark = pytest.mark.faults


def small_graph():
    return erdos_renyi(300, 2400, seed=11)


def run(plan=None, policy="CVC", k=4, graph=None, **kw):
    """Partition under ``plan`` with CommSan auditing every phase: each
    fault/recovery scenario doubles as a conservation-law check."""
    kw.setdefault("sanitizer", True)
    cusp = CuSP(k, policy, fault_plan=plan, **kw)
    dg = cusp.partition(graph if graph is not None else small_graph())
    if cusp.sanitizer is not None:
        assert cusp.sanitizer.violations == []
        assert cusp.sanitizer.phases_checked >= 5, (
            "CommSan audited nothing; sanitizer is not wired in"
        )
    return cusp, dg


def assert_same_partition(a, b):
    assert np.array_equal(a.masters, b.masters)
    for pa, pb in zip(a.partitions, b.partitions):
        assert np.array_equal(pa.global_ids, pb.global_ids)
        assert pa.num_masters == pb.num_masters
        assert np.array_equal(pa.local_graph.indptr, pb.local_graph.indptr)
        assert np.array_equal(pa.local_graph.indices, pb.local_graph.indices)


class TestFaultPlanParsing:
    def test_compact_spec_roundtrip(self):
        spec = "seed=42,send-fail=0.05,drop=0.01,dup=0.01,crash=1@2,crash=0@3:25,slow=3:0.5"
        plan = FaultPlan.from_spec(spec)
        assert plan.seed == 42
        assert plan.send_failure_rate == 0.05
        assert plan.crashes == (
            HostCrash(1, 2, None), HostCrash(0, 3, 25),
        )
        assert plan.slow_hosts == {3: 0.5}
        assert FaultPlan.from_spec(plan.describe()) == plan

    def test_json_spec(self):
        plan = FaultPlan.from_spec(json.dumps({
            "seed": 7,
            "drop_rate": 0.1,
            "crashes": [{"host": 2, "phase": "Edge Assignment"}],
            "slow_hosts": {"1": 0.5},
        }))
        assert plan.drop_rate == 0.1
        assert plan.crashes[0].phase == "Edge Assignment"
        assert plan.slow_hosts == {1: 0.5}

    def test_file_spec(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"seed": 3, "send_failure_rate": 0.2}))
        assert FaultPlan.from_spec(f"@{path}").send_failure_rate == 0.2

    @pytest.mark.parametrize("bad", [
        "send-fail=1.5", "crash=1", "slow=2", "nonsense=1", "crash=1@2:0",
    ])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(bad)

    def test_null_plan(self):
        assert FaultPlan().is_null()
        assert not FaultPlan(send_failure_rate=0.1).is_null()


class TestInjectorDeterminism:
    def test_same_seed_same_events(self):
        plan = FaultPlan(seed=5, send_failure_rate=0.2, drop_rate=0.1,
                         duplicate_rate=0.1)
        logs = []
        for _ in range(2):
            inj = FaultInjector(plan)
            inj.begin_phase("p")
            for i in range(200):
                inj.transient_send_failure(i % 4, (i + 1) % 4)
                inj.dropped(i % 4, (i + 1) % 4)
                inj.duplicated(i % 4, (i + 1) % 4)
            logs.append(list(inj.events))
        assert logs[0] == logs[1]
        assert logs[0]  # at those rates something must have fired

    def test_different_seed_different_events(self):
        def events(seed):
            inj = FaultInjector(FaultPlan(seed=seed, send_failure_rate=0.3))
            inj.begin_phase("p")
            return [inj.transient_send_failure(0, 1) for _ in range(100)]
        assert events(1) != events(2)

    def test_deterministic_end_to_end(self):
        plan = FaultPlan.from_spec("seed=9,send-fail=0.05,drop=0.02,crash=2@1")
        c1, dg1 = run(plan)
        c2, dg2 = run(plan)
        assert c1.last_fault_report.events == c2.last_fault_report.events
        assert_same_partition(dg1, dg2)


class TestReliableTransport:
    def test_message_faults_do_not_change_result(self):
        _, base = run()
        # seed 1 deterministically fires all three fault kinds at these
        # rates on this graph/policy under the per-(host, op) fault
        # channels (the run has only ~10 remote sends).
        plan = FaultPlan(seed=1, send_failure_rate=0.1, drop_rate=0.1,
                         duplicate_rate=0.1)
        cusp, dg = run(plan)
        assert_same_partition(base, dg)
        assert dg.breakdown.retry_bytes() > 0
        assert dg.breakdown.retry_messages() > 0
        # Retry traffic costs simulated time.
        assert dg.breakdown.total > base.breakdown.total
        kinds = {e[0] for e in cusp.last_fault_report.events}
        assert {"send-failure", "drop", "duplicate"} <= kinds

    def test_retries_exhausted(self):
        # Certain-failure rate is forbidden by validate(); 0.99 with a
        # tiny budget still exhausts immediately and deterministically.
        inj = FaultInjector(FaultPlan(seed=0, send_failure_rate=0.99))
        inj.begin_phase("p")
        comm = Communicator(2, injector=inj, max_retries=1)
        with pytest.raises(SendRetriesExhausted):
            for _ in range(50):
                comm.send(0, 1, None, tag="t", nbytes=64)

    def test_fault_free_plan_matches_no_plan(self):
        _, base = run()
        cusp, dg = run(FaultPlan(seed=123))  # null plan, injector attached
        assert_same_partition(base, dg)
        assert dg.breakdown.retry_bytes() == 0
        assert cusp.last_fault_report.summary() == "no faults injected"
        assert base.breakdown.total == pytest.approx(dg.breakdown.total)


class TestCrashRecovery:
    @pytest.mark.parametrize("phase", range(5))
    def test_boundary_crash_every_phase(self, phase):
        _, base = run()
        cusp, dg = run(FaultPlan(seed=3, crashes=(HostCrash(1, phase),)))
        assert_same_partition(base, dg)
        assert check_partition(dg, original=small_graph()).ok
        failed = dg.breakdown.failed_phases()
        assert [p.name for p in failed] == [PHASE_NAMES[phase]]
        assert cusp.last_fault_report.replays == 1

    @pytest.mark.parametrize("ops", [1, 5, 10_000])
    def test_mid_phase_crash(self, ops):
        _, base = run()
        cusp, dg = run(FaultPlan(seed=3, crashes=(HostCrash(0, 2, ops),)))
        assert_same_partition(base, dg)
        assert cusp.last_fault_report.replays == 1

    def test_multiple_crashes_different_phases(self):
        _, base = run()
        plan = FaultPlan(seed=3, crashes=(HostCrash(1, 1), HostCrash(3, 3)))
        cusp, dg = run(plan)
        assert_same_partition(base, dg)
        assert cusp.last_fault_report.replays == 2
        assert len(dg.breakdown.failed_phases()) == 2

    @pytest.mark.parametrize("policy", ["EEC", "CVC", "HVC", "FEC"])
    def test_recovery_across_policies(self, policy):
        _, base = run(policy=policy)
        _, dg = run(FaultPlan(seed=1, crashes=(HostCrash(2, 2),)),
                    policy=policy)
        assert_same_partition(base, dg)

    def test_acceptance_crash_plus_send_failures(self):
        """ISSUE acceptance: >=1 crash AND >=1 transient send failure."""
        _, base = run()
        plan = FaultPlan.from_spec("seed=42,send-fail=0.05,crash=1@2")
        cusp, dg = run(plan)
        assert_same_partition(base, dg)
        assert check_partition(dg, original=small_graph()).ok
        counts = cusp.last_fault_report.counts()
        assert counts.get("crash", 0) >= 1
        assert counts.get("send-failure", 0) >= 1
        assert dg.breakdown.retry_bytes() > 0

    def test_replay_cost_is_visible(self):
        _, base = run()
        _, dg = run(FaultPlan(seed=3, crashes=(HostCrash(1, 2),)))
        assert dg.breakdown.total > base.breakdown.total
        aborted = [p for p in dg.breakdown.phases if p.failed]
        assert len(aborted) == 1
        # The aborted attempt's traffic still counts as communication.
        assert dg.breakdown.comm_bytes() > base.breakdown.comm_bytes()
        # But not toward the end-to-end time (satellite: failed phases are
        # excluded from total and by_phase).
        assert PHASE_NAMES[2] in dg.breakdown.by_phase()
        assert dg.breakdown.phase(PHASE_NAMES[2]).failed is False

    def test_retry_budget_exhausted(self):
        plan = FaultPlan(seed=0, crashes=tuple(
            HostCrash(h, 2) for h in range(3)
        ))
        with pytest.raises(UnrecoverableClusterError):
            run(plan, max_retries=2)

    def test_all_hosts_crashing_is_unrecoverable(self):
        rm = RecoveryManager(2)
        rm.on_crash(0, "p")
        with pytest.raises(UnrecoverableClusterError):
            rm.on_crash(1, "p")


class TestRecoveryManager:
    def test_reassignment_to_least_loaded(self):
        rm = RecoveryManager(4)
        rm.on_crash(2, "p")
        ex = rm.executors()
        assert ex[2] != 2 and rm.alive[ex[2]]
        assert rm.drain_rereads() == [2]
        assert rm.drain_rereads() == []  # drained exactly once
        rm.on_crash(int(ex[2]), "q")
        ex2 = rm.executors()
        # Both dead hosts' slots now live on survivors, spread evenly.
        assert all(rm.alive[e] for e in ex2)
        counts = np.bincount(ex2, minlength=4)
        assert counts[~rm.alive].sum() == 0
        assert counts.max() == 2
        assert rm.num_dead == 2

    def test_crash_of_dead_host_is_ignored(self):
        rm = RecoveryManager(3)
        rm.on_crash(1, "p")
        rm.on_crash(1, "p")  # no-op beyond logging
        assert rm.num_dead == 1
        assert len(rm.crash_log) == 2


class TestSlowHosts:
    def test_slow_host_increases_total_time(self):
        _, base = run()
        _, dg = run(FaultPlan(seed=0, slow_hosts={0: 0.25}))
        assert_same_partition(base, dg)
        assert dg.breakdown.total > base.breakdown.total


class TestCheckpoints:
    def test_disk_checkpoints_written(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        _, dg = run(FaultPlan(seed=1, crashes=(HostCrash(1, 2),)),
                    checkpoint_dir=ckpt)
        manifest = json.loads((ckpt / "checkpoint.json").read_text())
        assert manifest["completed"] == [
            "reading", "masters", "assignment", "allocation",
        ]
        for stage in manifest["completed"]:
            assert (ckpt / f"{stage}.npz").exists()
        _, base = run()
        assert_same_partition(base, dg)

    def test_foreign_checkpoint_discarded(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        run(FaultPlan(seed=1), checkpoint_dir=ckpt)
        # A different run identity (other policy) must not replay from it.
        _, dg = run(FaultPlan(seed=1), policy="EEC", checkpoint_dir=ckpt)
        _, base = run(policy="EEC")
        assert_same_partition(base, dg)


class TestValidator:
    def test_valid_partition_passes(self):
        g = small_graph()
        _, dg = run(graph=g)
        report = check_partition(dg, original=g)
        assert report.ok
        assert report.checks_run > 10
        report.raise_if_failed()

    def test_corruption_detected(self):
        g = small_graph()
        _, dg = run(graph=g)
        dg.masters[0] = (dg.masters[0] + 1) % 4
        report = check_partition(dg, original=g)
        assert not report.ok
        assert "INVALID" in report.summary()
        with pytest.raises(AssertionError):
            report.raise_if_failed()


class TestCLI:
    def test_inject_faults_with_validate(self, tmp_path, capsys):
        gr = tmp_path / "g.gr"
        write_gr(erdos_renyi(200, 1600, seed=2), gr)
        rc = main([
            "partition", str(gr), "-k", "4", "-p", "CVC",
            "--inject-faults", "seed=42,send-fail=0.05,crash=1@2",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--validate",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fault injection" in out
        assert "replayed phases" in out
        assert "OK" in out

    def test_validate_subcommand_exit_codes(self, tmp_path, capsys):
        gr = tmp_path / "g.gr"
        g = erdos_renyi(150, 900, seed=5)
        write_gr(g, gr)
        parts = tmp_path / "parts"
        _, dg = run(graph=g)
        save_partitions(dg, parts)
        assert main(["validate", str(parts), str(gr)]) == 0
        # Corrupt the master map on disk: must exit non-zero.
        masters = np.load(parts / "masters.npy")
        masters[:5] = (masters[:5] + 1) % 4
        np.save(parts / "masters.npy", masters)
        assert main(["validate", str(parts), str(gr)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_validate_unloadable_directory(self, tmp_path, capsys):
        bogus = tmp_path / "not-a-partition"
        bogus.mkdir()
        (bogus / "meta.json").write_text("{ not json")
        assert main(["validate", str(bogus)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_faults_rejected_for_baselines(self, tmp_path):
        gr = tmp_path / "g.gr"
        write_gr(erdos_renyi(100, 400, seed=1), gr)
        with pytest.raises(SystemExit):
            main(["partition", str(gr), "-k", "2", "-p", "window",
                  "--inject-faults", "seed=1"])

    def test_bad_spec_is_a_clean_cli_error(self, tmp_path):
        gr = tmp_path / "g.gr"
        write_gr(erdos_renyi(100, 400, seed=1), gr)
        for spec in ("garbage=1", "@/nonexistent.json", "seed=1,crash=9@2",
                     "seed=1,slow=7:0.5"):
            with pytest.raises(SystemExit):
                main(["partition", str(gr), "-k", "4", "-p", "CVC",
                      "--inject-faults", spec])

    def test_unrecoverable_run_exits_nonzero(self, tmp_path, capsys):
        gr = tmp_path / "g.gr"
        write_gr(erdos_renyi(100, 400, seed=1), gr)
        rc = main(["partition", str(gr), "-k", "4", "-p", "CVC",
                   "--inject-faults", "seed=1,crash=1@2",
                   "--max-retries", "0"])
        assert rc == 1
        assert "partitioning failed" in capsys.readouterr().err


class TestPropertyBased:
    @settings(max_examples=15, deadline=None)
    @given(graph=graphs(min_nodes=8, max_nodes=40, max_edges=120),
           plan=fault_plans(num_hosts=3))
    def test_recovery_matches_fault_free(self, graph, plan):
        base = CuSP(3, "CVC").partition(graph)
        cusp = CuSP(3, "CVC", fault_plan=plan, max_retries=4, sanitizer=True)
        dg = cusp.partition(graph)
        assert cusp.sanitizer.violations == []
        assert_same_partition(base, dg)
        assert check_partition(dg, original=graph).ok

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_event_log_reproducible(self, seed):
        g = rmat(6, 6, seed=2)
        plan = FaultPlan(seed=seed, send_failure_rate=0.05, drop_rate=0.02,
                         crashes=(HostCrash(1, 2),))
        reports = []
        for _ in range(2):
            cusp = CuSP(4, "CVC", fault_plan=plan)
            cusp.partition(g)
            reports.append(cusp.last_fault_report)
        assert reports[0].events == reports[1].events
        assert reports[0].crash_log == reports[1].crash_log


class TestFaultReport:
    def test_summary_counts(self):
        report = FaultReport(
            plan=FaultPlan(),
            events=(("crash", "p", 1), ("drop", "p", 0, 1)),
            crash_log=(("p", 1),),
            replays=1,
        )
        assert report.counts() == {"crash": 1, "drop": 1}
        assert "1 crash(s)" in report.summary()
        assert "1 phase replay(s)" in report.summary()
