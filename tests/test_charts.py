"""Tests for the ASCII chart rendering."""

import pytest

from repro.cli import main
from repro.experiments import ExperimentResult
from repro.experiments.charts import (
    render_bars,
    render_experiment,
    render_series,
)


@pytest.fixture()
def table():
    return ExperimentResult(
        experiment="T", title="demo",
        columns=["graph", "a", "b"],
        rows=[
            {"graph": "x", "a": 1.0, "b": 4.0},
            {"graph": "y", "a": 2.0, "b": 8.0},
        ],
    )


class TestRenderBars:
    def test_contains_labels_and_bars(self, table):
        text = render_bars(table)
        assert "x / a" in text and "y / b" in text
        assert "#" in text

    def test_largest_value_longest_bar(self, table):
        lines = {l.split()[0] + " / " + l.split("/")[1].split()[0]: l
                 for l in render_bars(table).splitlines() if "#" in l}
        longest = max(lines.values(), key=lambda l: l.count("#"))
        assert "y / b" in longest

    def test_explicit_columns(self, table):
        text = render_bars(table, value_columns=["a"])
        assert "b" not in text.replace("== T: demo ==", "")

    def test_empty(self):
        r = ExperimentResult("E", "t", ["a"], [])
        assert render_bars(r) == "(no data)"

    def test_log_scale_noted(self, table):
        assert "(log scale)" in render_bars(table, log=True)

    def test_zero_values_ok(self):
        r = ExperimentResult("E", "t", ["g", "v"],
                             [{"g": "x", "v": 0.0}, {"g": "y", "v": 5.0}])
        text = render_bars(r)
        assert "0.000" in text


class TestRenderSeries:
    def test_axes_and_legend(self):
        r = ExperimentResult(
            "S", "sweep", columns=["x", "y1", "y2"],
            rows=[{"x": 1, "y1": 10.0, "y2": 1.0},
                  {"x": 2, "y1": 5.0, "y2": 2.0}],
        )
        text = render_series(r, x_column="x")
        assert "legend" in text
        assert "y1" in text and "y2" in text
        assert "<- x" in text

    def test_empty(self):
        r = ExperimentResult("S", "t", ["x", "y"], [])
        assert render_series(r, x_column="x") == "(no data)"


class TestRenderExperiment:
    def test_figure7_gets_series(self):
        r = ExperimentResult(
            "Figure 7", "t", columns=["batch size (KB)", "uk"],
            rows=[{"batch size (KB)": 0.0, "uk": 3.0},
                  {"batch size (KB)": 8.0, "uk": 1.0}],
        )
        assert "legend" in render_experiment(r)

    def test_other_gets_bars(self, table):
        assert "#" in render_experiment(table)


class TestCliChart:
    def test_experiment_chart_flag(self, capsys):
        assert main(["experiment", "table3", "--scale", "tiny", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "#" in out  # bars rendered after the table
