"""Tests for LDG, BVC, JVC — and Table I completeness.

The paper's Table I classifies every streaming policy in the literature;
this module checks the reproduction can express all of them through the
two-function interface.
"""

import numpy as np
import pytest

from repro.core import (
    CheckerboardRule,
    CuSP,
    GraphProp,
    JaggedRule,
    LDG,
    grid_shape,
    make_policy,
    policy_names,
)
from repro.graph import CSRGraph, erdos_renyi, get_dataset, star_graph


@pytest.fixture(scope="module")
def crawl():
    return get_dataset("kron", "tiny")


class TestTable1Coverage:
    """Every streaming class of the paper's Table I has a registered policy."""

    def test_edge_cut_class(self):
        # EEC (Gemini), LDG, Fennel
        for name in ("EEC", "LEC", "FEC"):
            assert name in policy_names()

    def test_vertex_cut_class(self):
        # PowerGraph, HVC, Ginger, HDRF, DBH
        for name in ("PGC", "HVC", "GVC", "HDRF", "DBH"):
            assert name in policy_names()

    def test_2d_cut_class(self):
        # CVC, BVC, JVC
        for name in ("CVC", "BVC", "JVC"):
            assert name in policy_names()

    @pytest.mark.parametrize(
        "name", ["LEC", "BVC", "JVC"]
    )
    def test_new_policies_partition_correctly(self, name, crawl):
        dg = CuSP(4, name, sync_rounds=2).partition(crawl)
        dg.validate(crawl)


class TestLDG:
    def test_capacity_respected_sequentially(self):
        """Run the rule single-host: the hard capacity bound holds."""
        g = erdos_renyi(100, 600, seed=14)
        dg = CuSP(1, "LEC").partition(g)
        assert dg.master_counts().max() <= 100

        p = GraphProp(g, 4)
        rule = LDG()
        view = rule.make_state(4, 1).host_view(0)
        masters = np.full(100, -1, dtype=np.int32)
        got = rule.assign_batch(p, np.arange(100), view, masters)
        assert np.bincount(got, minlength=4).max() <= -(-100 // 4)

    def test_sync_frequency_tightens_capacity(self, crawl):
        """Distributed, hosts work from stale loads between rounds, so
        the capacity bound is soft — and tightens as synchronization gets
        more frequent (the paper's Table VI/VII trade-off, observable)."""
        capacity = -(-crawl.num_nodes // 4)
        few = CuSP(4, "LEC", sync_rounds=1).partition(crawl)
        many = CuSP(4, "LEC", sync_rounds=50).partition(crawl)
        overflow_few = few.master_counts().max() - capacity
        overflow_many = many.master_counts().max() - capacity
        assert overflow_many < overflow_few
        assert many.master_counts().max() <= capacity * 1.1

    def test_affinity_wins_under_capacity(self):
        g = star_graph(4)
        p = GraphProp(g, 4)
        rule = LDG()
        state = rule.make_state(4, 1)
        view = state.host_view(0)
        masters = np.full(5, -1, dtype=np.int32)
        masters[1:] = 2  # all neighbors of node 0 on partition 2
        assert rule.assign(p, 0, view, masters) == 2

    def test_falls_back_to_least_loaded(self):
        g = CSRGraph.empty(8)
        p = GraphProp(g, 2)
        rule = LDG()
        state = rule.make_state(2, 1)
        view = state.host_view(0)
        masters = np.full(8, -1, dtype=np.int32)
        got = [rule.assign(p, v, view, masters) for v in range(8)]
        counts = np.bincount(got, minlength=2)
        assert counts.max() - counts.min() <= 1

    def test_batch_equivalent_to_scalar_protocol(self):
        g = erdos_renyi(60, 500, seed=13)
        p = GraphProp(g, 3)
        rule_a, rule_b = LDG(), LDG()
        sa = rule_a.make_state(3, 1).host_view(0)
        sb = rule_b.make_state(3, 1).host_view(0)
        masters_a = np.full(60, -1, dtype=np.int32)
        masters_b = np.full(60, -1, dtype=np.int32)
        ids = np.arange(60)
        got_a = rule_a.assign_batch(p, ids, sa, masters_a)
        got_b = np.empty(60, dtype=np.int32)
        for v in ids:
            got_b[v] = rule_b.assign_batch(p, np.array([v]), sb, masters_b)[0]
        assert np.array_equal(got_a, got_b)


class TestCheckerboard:
    def test_both_dimensions_blocked(self):
        k = 8
        pr, pc = grid_shape(k)
        p = GraphProp(CSRGraph.empty(k), k)
        rule = CheckerboardRule()
        # Fixing the source master pins the row band.
        for ms in range(k):
            owners = {rule.owner(p, 0, 1, ms, md) for md in range(k)}
            row = ms // pc
            assert owners <= set(range(row * pc, (row + 1) * pc))
        # Fixing the destination master pins the column band.
        for md in range(k):
            owners = {rule.owner(p, 0, 1, ms, md) for ms in range(k)}
            col = md // pr
            assert owners == {r * pc + col for r in range(pr)}

    def test_batch_matches_scalar(self, crawl):
        p = GraphProp(crawl, 8)
        src, dst = crawl.edges()
        sm = (src % 8).astype(np.int32)
        dm = (dst % 8).astype(np.int32)
        rule = CheckerboardRule()
        batch = rule.owner_batch(p, src, dst, sm, dm)
        scalar = [rule.owner(p, 0, 0, int(a), int(b)) for a, b in zip(sm, dm)]
        assert batch.tolist() == scalar


class TestJagged:
    def test_rows_blocked(self):
        k = 8
        pr, pc = grid_shape(k)
        p = GraphProp(CSRGraph.empty(k), k)
        rule = JaggedRule()
        for ms in range(k):
            owners = {rule.owner(p, 0, 1, ms, md) for md in range(k)}
            row = ms // pc
            assert owners <= set(range(row * pc, (row + 1) * pc))

    def test_columns_staggered_across_bands(self):
        """The jagged property: column assignment differs per row band."""
        k = 4  # grid 2x2
        p = GraphProp(CSRGraph.empty(k), k)
        rule = JaggedRule()
        md = 1
        cols = {
            ms // 2: rule.owner(p, 0, 1, ms, md) % 2 for ms in range(k)
        }
        assert cols[0] != cols[1]

    def test_batch_matches_scalar(self, crawl):
        p = GraphProp(crawl, 6)
        src, dst = crawl.edges()
        sm = (src % 6).astype(np.int32)
        dm = (dst % 6).astype(np.int32)
        rule = JaggedRule()
        batch = rule.owner_batch(p, src, dst, sm, dm)
        scalar = [rule.owner(p, 0, 0, int(a), int(b)) for a, b in zip(sm, dm)]
        assert batch.tolist() == scalar

    def test_analytics_on_jvc(self, crawl):
        from repro.analytics import BFS, Engine, bfs_reference, default_source

        src = default_source(crawl)
        dg = CuSP(4, "JVC").partition(crawl)
        res = Engine(dg).run(BFS(src))
        assert np.array_equal(res.values, bfs_reference(crawl, src))
