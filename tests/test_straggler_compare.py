"""Tests for straggler modeling and partition-comparison metrics."""

import numpy as np
import pytest

from repro.core import CuSP
from repro.graph import CSRGraph, get_dataset
from repro.metrics import master_agreement, migration_volume
from repro.runtime import SimulatedCluster


@pytest.fixture(scope="module")
def crawl():
    return get_dataset("kron", "tiny")


class TestStraggler:
    def test_one_slow_host_slows_every_phase(self, crawl):
        fast = CuSP(4, "CVC").partition(crawl)
        slow = CuSP(4, "CVC", host_speeds=[1, 1, 1, 0.2]).partition(crawl)
        assert slow.breakdown.total > fast.breakdown.total
        # The partitions themselves are identical (timing-only effect).
        assert np.array_equal(fast.masters, slow.masters)

    def test_uniform_speeds_are_nominal(self, crawl):
        base = CuSP(4, "CVC").partition(crawl)
        same = CuSP(4, "CVC", host_speeds=[1.0] * 4).partition(crawl)
        assert same.breakdown.total == pytest.approx(base.breakdown.total)

    def test_faster_hosts_speed_up(self, crawl):
        base = CuSP(4, "SVC", sync_rounds=2).partition(crawl)
        turbo = CuSP(4, "SVC", sync_rounds=2,
                     host_speeds=[4.0] * 4).partition(crawl)
        assert turbo.breakdown.total < base.breakdown.total

    def test_invalid_speeds(self):
        with pytest.raises(ValueError):
            SimulatedCluster(2, host_speeds=[1.0])
        with pytest.raises(ValueError):
            SimulatedCluster(2, host_speeds=[1.0, -1.0])

    def test_slowdown_bounded_by_compute_share(self, crawl):
        """A 5x slower host can at most 5x the compute-bound phases."""
        fast = CuSP(4, "EEC").partition(crawl)
        slow = CuSP(4, "EEC", host_speeds=[0.2, 1, 1, 1]).partition(crawl)
        assert slow.breakdown.total <= 5 * fast.breakdown.total


class TestPartitionComparison:
    def test_agreement_with_itself(self, crawl):
        a = CuSP(4, "CVC").partition(crawl)
        assert master_agreement(a, a) == 1.0
        assert migration_volume(a, a) == 0

    def test_agreement_detects_difference(self, crawl):
        a = CuSP(4, "EEC").partition(crawl)
        b = CuSP(4, "CEC").partition(crawl)  # different master blocks
        assert master_agreement(a, b) < 1.0

    def test_migration_counts_moved_edges(self):
        g = CSRGraph.from_edges([0, 1], [1, 0], num_nodes=2)
        a = CuSP(2, "EEC").partition(g)
        b = CuSP(2, "CEC").partition(g)
        vol = migration_volume(a, b)
        assert 0 <= vol <= g.num_edges

    def test_sync_rounds_change_svc_partitions(self, crawl):
        """Tables VI/VII's premise: round count changes the partitioning."""
        a = CuSP(4, "SVC", sync_rounds=1).partition(crawl)
        b = CuSP(4, "SVC", sync_rounds=50).partition(crawl)
        assert master_agreement(a, b) < 1.0
        assert migration_volume(a, b) > 0

    def test_mismatched_graphs_rejected(self, crawl):
        a = CuSP(2, "EEC").partition(crawl)
        small = CuSP(2, "EEC").partition(CSRGraph.empty(3))
        with pytest.raises(ValueError):
            master_agreement(a, small)
        with pytest.raises(ValueError):
            migration_volume(a, small)

    def test_empty_graph_agreement(self):
        g = CSRGraph.empty(0)
        a = CuSP(1, "EEC").partition(g)
        assert master_agreement(a, a) == 1.0
