"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    chung_lu,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    kronecker,
    paper_figure1_graph,
    path_graph,
    preferential_attachment,
    rmat,
    star_graph,
    webcrawl_like,
)
from repro.graph.generators import GRAPH500_WEIGHTS


class TestRMAT:
    def test_sizes(self):
        g = rmat(scale=8, edge_factor=8, seed=1)
        assert g.num_nodes == 256
        assert g.num_edges == 8 * 256

    def test_deterministic(self):
        a = rmat(scale=6, seed=7)
        b = rmat(scale=6, seed=7)
        assert a == b

    def test_seed_changes_graph(self):
        assert rmat(scale=6, seed=1) != rmat(scale=6, seed=2)

    def test_skewed_degrees(self):
        # graph500 weights concentrate edges on low-id nodes: the max
        # degree should far exceed the average.
        g = rmat(scale=10, edge_factor=16, seed=3)
        assert g.out_degree().max() > 8 * 16

    def test_dedup_reduces_edges(self):
        g = rmat(scale=6, edge_factor=16, seed=3, dedup=True)
        h = rmat(scale=6, edge_factor=16, seed=3, dedup=False)
        assert g.num_edges <= h.num_edges

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            rmat(scale=4, weights=(0.5, 0.5, 0.5, 0.5))

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            rmat(scale=-1)

    def test_scale_zero(self):
        g = rmat(scale=0, edge_factor=3, seed=0)
        assert g.num_nodes == 1
        assert g.num_edges == 3  # all self loops on the single node

    def test_kronecker_uses_graph500_weights(self):
        assert kronecker(scale=5, seed=9) == rmat(
            scale=5, weights=GRAPH500_WEIGHTS, seed=9
        )


class TestRandomModels:
    def test_chung_lu_sizes(self):
        g = chung_lu(500, 5000, seed=2)
        assert g.num_nodes == 500
        assert g.num_edges == 5000

    def test_chung_lu_heavier_in_tail(self):
        g = chung_lu(2000, 40000, out_exponent=0.4, in_exponent=0.9, seed=5)
        assert g.in_degree().max() > g.out_degree().max()

    def test_chung_lu_invalid_nodes(self):
        with pytest.raises(ValueError):
            chung_lu(0, 10)

    def test_erdos_renyi(self):
        g = erdos_renyi(100, 1000, seed=0)
        assert g.num_nodes == 100
        assert g.num_edges == 1000

    def test_erdos_renyi_roughly_uniform(self):
        g = erdos_renyi(50, 50_000, seed=1)
        deg = g.out_degree()
        assert deg.min() > 500  # expected 1000 each

    def test_preferential_attachment(self):
        g = preferential_attachment(200, out_degree=3, seed=4)
        assert g.num_nodes == 200
        # node v >= 3 emits exactly 3 edges
        assert g.num_edges == 1 + 2 + 3 * 197
        # hub formation: max in-degree well above out_degree
        assert g.in_degree().max() > 10

    def test_preferential_attachment_single_node(self):
        g = preferential_attachment(1)
        assert g.num_nodes == 1
        assert g.num_edges == 0

    def test_webcrawl_like_signature(self):
        g = webcrawl_like(5000, avg_degree=20, seed=8)
        assert g.num_edges == 100_000
        # Table III signature: extreme in-degree skew vs out-degree.
        assert g.in_degree().max() > 3 * g.out_degree().max()

    def test_webcrawl_deterministic(self):
        assert webcrawl_like(300, 10, seed=1) == webcrawl_like(300, 10, seed=1)


class TestDeterministicGraphs:
    def test_path(self):
        g = path_graph(4)
        assert g.edge_set() == {(0, 1), (1, 2), (2, 3)}

    def test_path_single(self):
        assert path_graph(1).num_edges == 0

    def test_cycle(self):
        g = cycle_graph(3)
        assert g.edge_set() == {(0, 1), (1, 2), (2, 0)}

    def test_star(self):
        g = star_graph(3)
        assert g.edge_set() == {(0, 1), (0, 2), (0, 3)}

    def test_complete(self):
        g = complete_graph(3)
        assert g.num_edges == 6
        assert (0, 0) not in g.edge_set()

    def test_grid(self):
        g = grid_graph(2, 2)
        assert g.edge_set() == {(0, 1), (2, 3), (0, 2), (1, 3)}

    def test_grid_invalid(self):
        with pytest.raises(ValueError):
            grid_graph(0, 3)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            path_graph(0)
        with pytest.raises(ValueError):
            cycle_graph(0)

    def test_paper_figure1(self):
        g = paper_figure1_graph()
        assert g.num_nodes == 10
        assert g.num_edges == 10
        # spot-check some edges from the figure
        assert (0, 1) in g.edge_set()  # A -> B
        assert (6, 9) in g.edge_set()  # G -> J
