"""Focused tests for the partition containers and phase internals."""

import numpy as np
import pytest

from repro.core import CuSP, GraphProp, compute_read_ranges, make_policy
from repro.core.assignment_phase import run_edge_assignment
from repro.core.masters_phase import run_master_assignment
from repro.graph import CSRGraph, erdos_renyi, get_dataset
from repro.runtime import Communicator
from repro.runtime.stats import PhaseStats


@pytest.fixture(scope="module")
def dg_and_graph():
    g = get_dataset("kron", "tiny")
    return CuSP(4, "CVC").partition(g), g


class TestLocalPartition:
    def test_masters_precede_mirrors(self, dg_and_graph):
        dg, _ = dg_and_graph
        for p in dg.partitions:
            assert np.all(p.master_host[: p.num_masters] == p.host)
            if p.num_mirrors:
                assert np.all(p.master_host[p.num_masters :] != p.host)

    def test_global_ids_sorted_within_sections(self, dg_and_graph):
        dg, _ = dg_and_graph
        for p in dg.partitions:
            m = p.master_global_ids
            mi = p.mirror_global_ids
            assert np.all(np.diff(m) > 0)
            if mi.size > 1:
                assert np.all(np.diff(mi) > 0)

    def test_to_local_inverse_of_global_ids(self, dg_and_graph):
        dg, _ = dg_and_graph
        for p in dg.partitions:
            locals_ = p.to_local(p.global_ids)
            assert np.array_equal(locals_, np.arange(p.num_proxies))

    def test_to_local_missing_is_negative(self, dg_and_graph):
        dg, g = dg_and_graph
        for p in dg.partitions:
            absent = np.setdiff1d(np.arange(g.num_nodes), p.global_ids)
            if absent.size:
                assert np.all(p.to_local(absent[:5]) == -1)

    def test_has_proxy_and_is_master(self, dg_and_graph):
        dg, _ = dg_and_graph
        p = dg.partitions[0]
        gid = int(p.master_global_ids[0])
        assert p.has_proxy(gid)
        assert p.is_master(int(p.to_local(np.array([gid]))[0]))

    def test_global_edges_use_proxy_ids(self, dg_and_graph):
        dg, g = dg_and_graph
        for p in dg.partitions:
            src, dst = p.global_edges()
            assert set(src.tolist()) <= set(p.global_ids.tolist())
            assert set(dst.tolist()) <= set(p.global_ids.tolist())


class TestDistributedGraph:
    def test_counts_sum(self, dg_and_graph):
        dg, g = dg_and_graph
        assert dg.edge_counts().sum() == g.num_edges
        assert dg.master_counts().sum() == g.num_nodes

    def test_partition_of_master(self, dg_and_graph):
        dg, _ = dg_and_graph
        for v in (0, 7, 100):
            p = dg.partition_of_master(v)
            assert v in set(p.master_global_ids.tolist())

    def test_to_global_graph_roundtrip(self, dg_and_graph):
        dg, g = dg_and_graph
        assert dg.to_global_graph() == g

    def test_repr_mentions_policy(self, dg_and_graph):
        dg, _ = dg_and_graph
        assert "CVC" in repr(dg)

    def test_validate_catches_bad_master_map(self, dg_and_graph):
        dg, g = dg_and_graph
        saved = dg.masters.copy()
        try:
            dg.masters = (dg.masters + 1) % dg.num_partitions
            with pytest.raises(AssertionError):
                dg.validate()
        finally:
            dg.masters = saved

    def test_balance_on_empty_partitions(self):
        g = CSRGraph.empty(4)
        dg = CuSP(2, "EEC").partition(g)
        assert dg.edge_balance() == 1.0  # no edges anywhere


class TestPhaseInternals:
    def test_master_assignment_covers_all_nodes(self):
        g = erdos_renyi(200, 1500, seed=3)
        prop = GraphProp(g, 4)
        ranges = compute_read_ranges(g, 4)
        phase = PhaseStats("m", 4, Communicator(4))
        ma = run_master_assignment(phase, prop, make_policy("SVC"), ranges,
                                   sync_rounds=3)
        assert ma.masters.min() >= 0
        assert ma.masters.max() < 4

    def test_edge_assignment_to_receive_consistent(self):
        g = erdos_renyi(150, 1200, seed=4)
        prop = GraphProp(g, 4)
        ranges = compute_read_ranges(g, 4)
        phase = PhaseStats("m", 4, Communicator(4))
        policy = make_policy("CVC")
        ma = run_master_assignment(phase, prop, policy, ranges)
        phase2 = PhaseStats("e", 4, Communicator(4))
        ea = run_edge_assignment(phase2, prop, policy, ranges, ma.masters)
        # Row sums = edges each host read; column sums = edges received.
        assert ea.edges_to.sum() == g.num_edges
        assert np.array_equal(ea.to_receive, ea.edges_to.sum(axis=0))

    def test_owner_arrays_within_range(self):
        g = erdos_renyi(100, 900, seed=5)
        prop = GraphProp(g, 5)
        ranges = compute_read_ranges(g, 5)
        phase = PhaseStats("m", 5, Communicator(5))
        policy = make_policy("HVC", degree_threshold=5)
        ma = run_master_assignment(phase, prop, policy, ranges)
        phase2 = PhaseStats("e", 5, Communicator(5))
        ea = run_edge_assignment(phase2, prop, policy, ranges, ma.masters)
        for owners in ea.owners:
            if owners.size:
                assert owners.min() >= 0 and owners.max() < 5

    def test_sync_rounds_validation(self):
        g = erdos_renyi(10, 20, seed=6)
        prop = GraphProp(g, 2)
        ranges = compute_read_ranges(g, 2)
        phase = PhaseStats("m", 2, Communicator(2))
        with pytest.raises(ValueError):
            run_master_assignment(phase, prop, make_policy("EEC"), ranges,
                                  sync_rounds=0)
