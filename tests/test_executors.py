"""The pluggable per-host execution engine (``repro.runtime.executor``).

Headline property: ``ParallelExecutor`` is *observationally identical*
to ``SerialExecutor`` — same partitions bit for bit, same simulated
``TimeBreakdown`` down to every byte/message/retry counter — because
per-host comm ledgers are merged in host order at the phase barrier,
reproducing exactly the serial host-by-host schedule.  That must hold
for every policy, and it must keep holding under injected faults and
crash-recovery replays.

Also covers the comm-layer fixes that rode along: ``payload_nbytes`` on
NumPy 2 scalars and 0-d arrays, explicit ``nbytes=`` on allreduce, and
``partners`` counting retry-only peers.
"""

import os
import signal
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CuSP, policy_names
from repro.graph import erdos_renyi
from repro.runtime.comm import Communicator, payload_nbytes
from repro.runtime.executor import (
    EXECUTOR_NAMES,
    HostTask,
    ParallelExecutor,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
)
from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    HostCrash,
    SendRetriesExhausted,
)

from repro.runtime.colfab import leaked_segments

from .strategies import fault_plans, graphs


@pytest.fixture(autouse=True)
def _no_leaked_shm_segments():
    """Every test in this module — pooled process runs included — must
    leave ``/dev/shm`` clean: graph-residency segments are unlinked at
    executor close, wire segments at decode/release, and crash teardown
    sweeps whatever a killed worker abandoned."""
    yield
    assert leaked_segments() == [], (
        "shared-memory segments leaked past executor teardown"
    )


def assert_same_partition(a, b):
    assert np.array_equal(a.masters, b.masters)
    assert len(a.partitions) == len(b.partitions)
    for pa, pb in zip(a.partitions, b.partitions):
        assert np.array_equal(pa.global_ids, pb.global_ids)
        assert pa.num_masters == pb.num_masters
        assert np.array_equal(pa.master_host, pb.master_host)
        assert np.array_equal(pa.local_graph.indptr, pb.local_graph.indptr)
        assert np.array_equal(pa.local_graph.indices, pb.local_graph.indices)


def assert_same_breakdown(a, b):
    """Every simulated counter must match — not approximately, exactly."""
    assert len(a.phases) == len(b.phases)
    for pa, pb in zip(a.phases, b.phases):
        for field in (
            "name", "total", "disk", "compute", "comm", "collective",
            "comm_bytes", "comm_messages", "retry_bytes", "retry_messages",
            "failed",
        ):
            assert getattr(pa, field) == getattr(pb, field), (
                f"{pa.name}: {field} diverges between executors"
            )


def run_both(graph, policy, k=4, plan=None, **kw):
    """Serial vs parallel run — the parallel side under the isolation
    race detector and both sides under the CommSan contract sanitizer,
    so every equivalence example also proves no task touched another
    host's state and no phase broke its communication contract."""
    serial = CuSP(k, policy, fault_plan=plan, executor="serial",
                  sanitizer=True, **kw)
    checked = ParallelExecutor(check_isolation=True)
    parallel = CuSP(k, policy, fault_plan=plan, executor=checked,
                    sanitizer=True, **kw)
    dg_s, dg_p = serial.partition(graph), parallel.partition(graph)
    assert not checked.monitor.violations
    assert checked.monitor.num_accesses > 0, (
        "isolation monitor observed nothing; detector is not wired in"
    )
    for cusp in (serial, parallel):
        assert cusp.sanitizer.violations == []
        assert cusp.sanitizer.phases_checked >= 5, (
            "CommSan audited nothing; sanitizer is not wired in"
        )
    return dg_s, dg_p


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("policy", policy_names())
    def test_all_policies_bit_identical(self, policy):
        graph = erdos_renyi(300, 2400, seed=11)
        dg_s, dg_p = run_both(graph, policy)
        assert_same_partition(dg_s, dg_p)
        assert_same_breakdown(dg_s.breakdown, dg_p.breakdown)

    @settings(max_examples=20, deadline=None)
    @given(graph=graphs(), policy=st.sampled_from(policy_names()),
           k=st.integers(2, 6))
    def test_arbitrary_graphs(self, graph, policy, k):
        dg_s, dg_p = run_both(graph, policy, k=k)
        assert_same_partition(dg_s, dg_p)
        assert_same_breakdown(dg_s.breakdown, dg_p.breakdown)

    @settings(max_examples=10, deadline=None)
    @given(graph=graphs(min_nodes=8), buffer_size=st.sampled_from(
        [64, 4096, 8 << 20]))
    def test_buffer_sizes(self, graph, buffer_size):
        dg_s, dg_p = run_both(graph, "CVC", buffer_size=buffer_size)
        assert_same_partition(dg_s, dg_p)
        assert_same_breakdown(dg_s.breakdown, dg_p.breakdown)

    def test_explicit_executor_instances(self):
        graph = erdos_renyi(200, 1200, seed=5)
        dg_s = CuSP(4, "HVC", executor=SerialExecutor()).partition(graph)
        dg_p = CuSP(
            4, "HVC", executor=ParallelExecutor(max_workers=3)
        ).partition(graph)
        assert_same_partition(dg_s, dg_p)
        assert_same_breakdown(dg_s.breakdown, dg_p.breakdown)


@pytest.mark.faults
class TestEquivalenceUnderFaults:
    def test_message_faults_and_crash_recovery(self, tmp_path):
        plan = FaultPlan(
            seed=2, send_failure_rate=0.05, drop_rate=0.03,
            duplicate_rate=0.03,
            crashes=(
                # op-keyed mid-phase crash + phase-entry crash: both
                # abort attempts that the parallel merge must discard
                # identically to the serial abort.
                HostCrash(host=1, phase=2, op_count=5),
                HostCrash(host=2, phase=4),
            ),
        )
        graph = erdos_renyi(300, 2400, seed=11)
        serial = CuSP(4, "CVC", fault_plan=plan, executor="serial",
                      checkpoint_dir=str(tmp_path / "s"), sanitizer=True)
        checked = ParallelExecutor(check_isolation=True)
        parallel = CuSP(4, "CVC", fault_plan=plan, executor=checked,
                        checkpoint_dir=str(tmp_path / "p"), sanitizer=True)
        dg_s, dg_p = serial.partition(graph), parallel.partition(graph)
        assert not checked.monitor.violations
        assert serial.sanitizer.violations == []
        assert parallel.sanitizer.violations == []
        assert_same_partition(dg_s, dg_p)
        assert_same_breakdown(dg_s.breakdown, dg_p.breakdown)
        assert serial.last_fault_report.events == (
            parallel.last_fault_report.events
        )
        # The plan really fired: replayed phases appear in both.
        assert dg_s.breakdown.failed_phases()

    @settings(max_examples=15, deadline=None)
    @given(plan=fault_plans(), policy=st.sampled_from(["EEC", "CVC", "SVC"]))
    def test_arbitrary_fault_plans(self, plan, policy):
        graph = erdos_renyi(120, 700, seed=7)
        serial = CuSP(4, policy, fault_plan=plan, executor="serial",
                      sanitizer=True)
        checked = ParallelExecutor(check_isolation=True)
        parallel = CuSP(4, policy, fault_plan=plan, executor=checked,
                        sanitizer=True)
        try:
            dg_s = serial.partition(graph)
        except SendRetriesExhausted:
            # An unlucky seed can legitimately fail one send past the
            # retry budget.  Fault draws are keyed to (host, op), so the
            # parallel executor must reach the identical verdict.
            with pytest.raises(SendRetriesExhausted):
                parallel.partition(graph)
            return
        dg_p = parallel.partition(graph)
        assert not checked.monitor.violations
        assert serial.sanitizer.violations == []
        assert parallel.sanitizer.violations == []
        assert_same_partition(dg_s, dg_p)
        assert_same_breakdown(dg_s.breakdown, dg_p.breakdown)
        assert serial.last_fault_report.events == (
            parallel.last_fault_report.events
        )


class TestExecutorMechanics:
    def test_make_executor(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("parallel"), ParallelExecutor)
        ex = ParallelExecutor()
        assert make_executor(ex) is ex
        checked = make_executor("parallel-checked")
        assert isinstance(checked, ParallelExecutor)
        assert checked.monitor is not None
        assert isinstance(make_executor("process"), ProcessExecutor)
        pchecked = make_executor("process-checked")
        assert isinstance(pchecked, ProcessExecutor)
        assert pchecked.monitor is not None
        with pytest.raises(ValueError):
            make_executor("bogus")
        assert set(EXECUTOR_NAMES) == {
            "serial", "parallel", "parallel-checked",
            "process", "process-checked",
        }

    def _stats(self, num_hosts=3):
        from repro.runtime.stats import PhaseStats

        comm = Communicator(num_hosts, injector=FaultInjector(FaultPlan()))
        return PhaseStats(name="test", comm=comm, num_hosts=num_hosts)

    def test_duplicate_hosts_rejected(self):
        ph = self._stats()
        with pytest.raises(ValueError):
            ParallelExecutor().run(ph, [
                HostTask(0, lambda v: None), HostTask(0, lambda v: None),
            ])

    def test_results_in_task_order(self):
        ph = self._stats()
        tasks = [HostTask(h, (lambda h: lambda v: h * 10)(h))
                 for h in (2, 0, 1)]
        assert ParallelExecutor().run(ph, tasks) == [20, 0, 10]
        ph2 = self._stats()
        assert SerialExecutor().run(ph2, tasks) == [20, 0, 10]

    def test_parallel_actually_overlaps(self):
        ph = self._stats(num_hosts=2)
        barrier = threading.Barrier(2, timeout=10)

        def body(view):
            barrier.wait()  # deadlocks unless both tasks run concurrently
            return True

        results = ParallelExecutor(max_workers=2).run(ph, [
            HostTask(0, body), HostTask(1, body),
        ])
        assert results == [True, True]

    def test_task_exception_propagates(self):
        ph = self._stats()

        def boom(view):
            raise RuntimeError("task failed")

        with pytest.raises(RuntimeError, match="task failed"):
            ParallelExecutor().run(ph, [HostTask(0, boom)])

    def test_ledger_merge_matches_direct(self):
        """The ledger path charges the same matrices as direct sends."""
        def workload(view, peers):
            for dst in peers:
                view.send(dst, np.arange(50), tag="t")
            view.add_disk(100.0)
            view.add_compute(7.0)

        def totals(ph):
            c = ph.comm
            return (
                c.sent_bytes.copy(), c.sent_messages.copy(),
                ph.disk_bytes.copy(), ph.compute_units.copy(),
            )

        ph_s, ph_p = self._stats(), self._stats()
        tasks = lambda: [
            HostTask(h, (lambda h: lambda v: workload(v, [
                j for j in range(3) if j != h]))(h))
            for h in range(3)
        ]
        SerialExecutor().run(ph_s, tasks())
        ParallelExecutor().run(ph_p, tasks())
        for a, b in zip(totals(ph_s), totals(ph_p)):
            assert np.array_equal(a, b)
        # Queued payloads drain identically (host order).
        for j in range(3):
            recv_s = ph_s.comm.recv_all(j, tag="t")
            recv_p = ph_p.comm.recv_all(j, tag="t")
            assert [src for src, _ in recv_s] == [src for src, _ in recv_p]


def run_serial_and_process(graph, policy, k=4, plan=None, **kw):
    """Serial vs forked-process run, both under CommSan and the process
    side under the isolation detector (worker evidence is shipped back
    and merged into the parent's monitor)."""
    serial = CuSP(k, policy, fault_plan=plan, executor="serial",
                  sanitizer=True, **kw)
    checked = ProcessExecutor(check_isolation=True)
    proc = CuSP(k, policy, fault_plan=plan, executor=checked,
                sanitizer=True, **kw)
    dg_s, dg_p = serial.partition(graph), proc.partition(graph)
    assert not checked.monitor.violations
    assert checked.monitor.num_accesses > 0, (
        "isolation evidence never crossed the process boundary"
    )
    for cusp in (serial, proc):
        assert cusp.sanitizer.violations == []
        assert cusp.sanitizer.phases_checked >= 5
    return dg_s, dg_p


class TestSerialProcessEquivalence:
    """ProcessExecutor must be observationally identical to serial: the
    same partitions and every simulated counter, with ledger deltas,
    fault-channel RNG states and sanitizer evidence shipped across the
    process boundary instead of shared memory."""

    @pytest.mark.parametrize("policy", policy_names())
    def test_all_policies_bit_identical(self, policy):
        graph = erdos_renyi(300, 2400, seed=11)
        dg_s, dg_p = run_serial_and_process(graph, policy)
        assert_same_partition(dg_s, dg_p)
        assert_same_breakdown(dg_s.breakdown, dg_p.breakdown)

    @pytest.mark.parametrize("fabric", ["columnar", "scalar"])
    def test_both_fabrics(self, fabric):
        graph = erdos_renyi(250, 1800, seed=3)
        dg_s, dg_p = run_serial_and_process(graph, "FEC", fabric=fabric)
        assert_same_partition(dg_s, dg_p)
        assert_same_breakdown(dg_s.breakdown, dg_p.breakdown)

    def test_crash_bearing_fault_plan(self, tmp_path):
        plan = FaultPlan(
            seed=2, send_failure_rate=0.05, drop_rate=0.03,
            duplicate_rate=0.03,
            crashes=(
                HostCrash(host=1, phase=2, op_count=5),
                HostCrash(host=2, phase=4),
            ),
        )
        graph = erdos_renyi(300, 2400, seed=11)
        serial = CuSP(4, "CVC", fault_plan=plan, executor="serial",
                      checkpoint_dir=str(tmp_path / "s"), sanitizer=True)
        checked = ProcessExecutor(check_isolation=True)
        proc = CuSP(4, "CVC", fault_plan=plan, executor=checked,
                    checkpoint_dir=str(tmp_path / "p"), sanitizer=True)
        dg_s, dg_p = serial.partition(graph), proc.partition(graph)
        assert not checked.monitor.violations
        assert serial.sanitizer.violations == []
        assert proc.sanitizer.violations == []
        assert_same_partition(dg_s, dg_p)
        assert_same_breakdown(dg_s.breakdown, dg_p.breakdown)
        assert serial.last_fault_report.events == (
            proc.last_fault_report.events
        )
        assert dg_s.breakdown.failed_phases()

    def test_chaos_campaign(self):
        from repro.chaos import run_campaign

        report = run_campaign(plans=4, seed=7, executor="process")
        assert report.ok(), report.render_text()

    def test_worker_exception_propagates(self):
        ph = _make_stats()

        def boom(view):
            raise RuntimeError("task failed in worker")

        tasks = [HostTask(0, lambda v: None), HostTask(1, boom)]
        with pytest.raises(RuntimeError, match="task failed in worker"):
            ProcessExecutor(max_workers=2).run(ph, tasks)

    def test_unshippable_result_is_reported(self):
        ph = _make_stats()
        tasks = [
            HostTask(h, (lambda h: lambda v: (lambda: h))(h))  # closures
            for h in range(2)                                  # don't pickle
        ]
        with pytest.raises(RuntimeError, match="unshippable"):
            ProcessExecutor(max_workers=2).run(ph, tasks)

    def test_results_in_task_order(self):
        ph = _make_stats()
        tasks = [HostTask(h, (lambda h: lambda v: h * 10)(h))
                 for h in (2, 0, 1)]
        assert ProcessExecutor(max_workers=2).run(ph, tasks) == [20, 0, 10]


def _make_stats(num_hosts=3):
    from repro.runtime.stats import PhaseStats

    comm = Communicator(num_hosts, injector=FaultInjector(FaultPlan()))
    return PhaseStats(name="test", comm=comm, num_hosts=num_hosts)


# Module-level bodies: resolvable by name in a pool worker, so these
# barriers take the persistent-pool path (lambdas would fall back to
# fork-per-barrier and never touch the pool's crash teardown).
def _pool_large_delta_body(view):
    view.send(1, np.arange(1 << 15, dtype=np.int64), tag="bulk")
    return "shipped"


def _pool_suicide_body(view):
    os.kill(os.getpid(), signal.SIGKILL)


def _pool_ok_body(view):
    return "ok"


class TestPoolCrashTeardown:
    """Killing a pool worker mid-phase must not leak a single segment,
    and the pool must respawn transparently on the next barrier."""

    def test_worker_killed_mid_phase_sweeps_all_segments(self):
        ph = _make_stats(num_hosts=2)
        # Pending inbound traffic for the doomed host rides to its
        # worker in borrowed shm segments the worker will never drain.
        ph.comm.send(0, 1, np.arange(1 << 15, dtype=np.int64), tag="pre")
        ex = ProcessExecutor(max_workers=2)
        try:
            tasks = [
                HostTask(0, _pool_large_delta_body),  # ships a big delta
                HostTask(1, _pool_suicide_body),      # SIGKILLs itself
            ]
            with pytest.raises(RuntimeError, match="died without shipping"):
                ex.run(ph, tasks)
            # Crash teardown swept everything: the borrowed preload
            # segments, the surviving worker's decoded delta, and any
            # orphan the dead worker left in /dev/shm.
            assert leaked_segments() == []
            # The next barrier respawns the pool and runs normally.
            ph2 = _make_stats(num_hosts=2)
            out = ex.run(ph2, [
                HostTask(0, _pool_ok_body), HostTask(1, _pool_ok_body),
            ])
            assert out == ["ok", "ok"]
        finally:
            ex.close()
        assert leaked_segments() == []


class TestCommRegressions:
    def test_payload_nbytes_numpy2_scalars(self):
        # np.bool_ is no longer a bool subclass on NumPy 2; this used to
        # raise TypeError deep inside send().
        assert payload_nbytes(np.bool_(True)) == 8
        assert payload_nbytes(np.int32(7)) == 8
        assert payload_nbytes(np.float64(1.5)) == 8
        assert payload_nbytes(True) == 8

    def test_payload_nbytes_zero_dim_array(self):
        scalar_arr = np.array(3.0)
        assert scalar_arr.ndim == 0
        assert payload_nbytes(scalar_arr) == scalar_arr.nbytes

    def test_send_numpy_bool_payload(self):
        comm = Communicator(2, injector=FaultInjector(FaultPlan()))
        comm.send(0, 1, np.bool_(True), tag="flag")
        [(src, payload)] = comm.recv_all(1, tag="flag")
        assert src == 0 and payload == np.bool_(True)
        assert comm.sent_bytes[0, 1] == 8.0

    def test_allreduce_nbytes_override(self):
        comm = Communicator(3, injector=FaultInjector(FaultPlan()))
        contributions = [np.arange(4, dtype=np.float64) for _ in range(3)]
        comm.allreduce_sum(contributions, nbytes=1000.0)
        kind, charged = comm.collective_events[-1]
        assert kind == "allreduce" and charged == 1000.0
        comm2 = Communicator(3, injector=FaultInjector(FaultPlan()))
        comm2.allreduce_max([np.ones(4) for _ in range(3)], nbytes=64.0)
        assert comm2.collective_events[-1][1] == 64.0

    def test_partners_counts_retry_only_peers(self):
        comm = Communicator(4, injector=FaultInjector(FaultPlan()))
        # A peer reached only by retransmissions (e.g. every payload
        # send was redirected elsewhere but the retries were charged)
        # is still a communication partner.
        comm.retry_bytes[0, 3] = 128.0
        comm.retry_messages[0, 3] = 2.0
        assert comm.partners(0) == 1
        assert comm.partners(3) == 1
        comm.sent_bytes[0, 1] = 64.0
        assert comm.partners(0) == 2
        # Self-traffic never counts.
        comm.sent_bytes[2, 2] = 64.0
        assert comm.partners(2) == 0
