"""Shared hypothesis strategies for the test suite."""

import numpy as np
from hypothesis import strategies as st

from repro.graph import CSRGraph
from repro.runtime.faults import FaultPlan, HostCrash

__all__ = ["graphs", "fault_plans"]


@st.composite
def graphs(draw, max_nodes=40, max_edges=120, weighted=False, min_nodes=1):
    """An arbitrary directed multigraph (optionally with weights)."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    data = None
    if weighted:
        data = draw(st.lists(st.integers(1, 1000), min_size=m, max_size=m))
    return CSRGraph.from_edges(
        np.array(src, dtype=np.int64),
        np.array(dst, dtype=np.int64),
        num_nodes=n,
        edge_data=np.array(data, dtype=np.int64) if weighted else None,
    )


@st.composite
def fault_plans(draw, num_hosts=4, max_crashes=2, allow_slow=True):
    """An arbitrary recoverable :class:`FaultPlan` for ``num_hosts`` hosts.

    At most ``max_crashes`` crashes on *distinct* hosts (so at least one
    host always survives when ``max_crashes < num_hosts``), modest
    message-fault rates, and optional slow hosts.
    """
    n_crashes = draw(st.integers(0, min(max_crashes, num_hosts - 1)))
    hosts = draw(
        st.lists(
            st.integers(0, num_hosts - 1),
            min_size=n_crashes, max_size=n_crashes, unique=True,
        )
    )
    crashes = tuple(
        HostCrash(
            host=h,
            phase=draw(st.integers(0, 4)),
            op_count=draw(st.one_of(st.none(), st.integers(1, 30))),
        )
        for h in hosts
    )
    slow = {}
    if allow_slow and draw(st.booleans()):
        slow[draw(st.integers(0, num_hosts - 1))] = draw(
            st.floats(0.25, 1.0, allow_nan=False)
        )
    return FaultPlan(
        seed=draw(st.integers(0, 2**32 - 1)),
        send_failure_rate=draw(st.sampled_from([0.0, 0.02, 0.1])),
        drop_rate=draw(st.sampled_from([0.0, 0.02])),
        duplicate_rate=draw(st.sampled_from([0.0, 0.02])),
        crashes=crashes,
        slow_hosts=slow,
    )
