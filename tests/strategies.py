"""Shared hypothesis strategies for the test suite."""

import numpy as np
from hypothesis import strategies as st

from repro.graph import CSRGraph

__all__ = ["graphs"]


@st.composite
def graphs(draw, max_nodes=40, max_edges=120, weighted=False, min_nodes=1):
    """An arbitrary directed multigraph (optionally with weights)."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    data = None
    if weighted:
        data = draw(st.lists(st.integers(1, 1000), min_size=m, max_size=m))
    return CSRGraph.from_edges(
        np.array(src, dtype=np.int64),
        np.array(dst, dtype=np.int64),
        num_nodes=n,
        edge_data=np.array(data, dtype=np.int64) if weighted else None,
    )
