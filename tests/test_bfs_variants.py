"""Tests for pull-model and direction-optimizing BFS."""

import numpy as np
import pytest

from repro.analytics import (
    BFS,
    BFSDirectionOptimizing,
    BFSPull,
    Engine,
    bfs_reference,
    default_source,
)
from repro.core import CuSP
from repro.graph import CSRGraph, erdos_renyi, get_dataset, path_graph, star_graph


@pytest.fixture(scope="module")
def crawl():
    return get_dataset("gsh", "tiny")


class TestBFSPull:
    @pytest.mark.parametrize("policy", ["EEC", "CVC", "HVC", "SVC"])
    def test_matches_push_and_reference(self, policy, crawl):
        src = default_source(crawl)
        dg = CuSP(4, policy, sync_rounds=2).partition(crawl)
        engine = Engine(dg)
        pull = engine.run(BFSPull(src))
        push = engine.run(BFS(src))
        ref = bfs_reference(crawl, src)
        assert np.array_equal(pull.values, ref)
        assert np.array_equal(push.values, pull.values)

    def test_deep_path(self):
        g = path_graph(40)
        dg = CuSP(3, "EEC").partition(g)
        res = Engine(dg).run(BFSPull(0))
        assert res.values.tolist() == list(range(40))

    def test_unreachable(self):
        g = CSRGraph.from_edges([0], [1], num_nodes=4)
        dg = CuSP(2, "EEC").partition(g)
        res = Engine(dg).run(BFSPull(0))
        assert res.values[2] == res.values[3]  # both INF

    def test_work_profile_differs_from_push(self, crawl):
        """Pull scans unvisited in-edges: on a mostly-reached graph its
        total compute differs from push's frontier-out-degree work."""
        src = default_source(crawl)
        dg = CuSP(2, "EEC").partition(crawl)
        engine = Engine(dg)
        pull = engine.run(BFSPull(src))
        push = engine.run(BFS(src))
        pull_compute = sum(p.compute for p in pull.breakdown.phases)
        push_compute = sum(p.compute for p in push.breakdown.phases)
        assert pull_compute != push_compute


class TestDirectionOptimizing:
    @pytest.mark.parametrize("policy", ["EEC", "CVC"])
    def test_matches_reference(self, policy, crawl):
        src = default_source(crawl)
        dg = CuSP(4, policy).partition(crawl)
        res = Engine(dg).run(BFSDirectionOptimizing(src))
        assert np.array_equal(res.values, bfs_reference(crawl, src))

    def test_switches_modes_on_expanding_frontier(self, crawl):
        """A hub source floods the frontier: the controller must go pull."""
        src = default_source(crawl)
        dg = CuSP(2, "EEC").partition(crawl)
        app = BFSDirectionOptimizing(src, alpha=0.05, beta=0.01)
        Engine(dg).run(app)
        assert "pull" in app.mode_history
        assert "push" in app.mode_history

    def test_stays_push_on_sparse_path(self):
        g = path_graph(60)
        dg = CuSP(2, "EEC").partition(g)
        app = BFSDirectionOptimizing(0, alpha=0.5, beta=0.1)
        res = Engine(dg).run(app)
        assert np.array_equal(res.values, bfs_reference(g, 0))
        assert set(app.mode_history) == {"push"}

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            BFSDirectionOptimizing(0, alpha=0.1, beta=0.5)
        with pytest.raises(ValueError):
            BFSDirectionOptimizing(0, alpha=1.5)

    def test_random_graph_sweep(self):
        g = erdos_renyi(100, 1200, seed=40)
        dg = CuSP(4, "HVC").partition(g)
        res = Engine(dg).run(BFSDirectionOptimizing(0))
        assert np.array_equal(res.values, bfs_reference(g, 0))

    def test_star_burst(self):
        g = star_graph(200)
        dg = CuSP(4, "CVC").partition(g)
        res = Engine(dg).run(BFSDirectionOptimizing(0))
        assert np.array_equal(res.values, bfs_reference(g, 0))
