"""Tests for the XtraPulp-style baseline and hash partitioner."""

import numpy as np
import pytest

from repro.baselines import XtraPulp, assemble_edge_cut, hash_partition
from repro.core import CuSP
from repro.graph import CSRGraph, erdos_renyi, get_dataset, grid_graph


@pytest.fixture(scope="module")
def crawl():
    return get_dataset("gsh", "tiny")


class TestAssembleEdgeCut:
    def test_roundtrip(self, crawl):
        labels = (np.arange(crawl.num_nodes) % 3).astype(np.int32)
        dg = assemble_edge_cut(crawl, labels, 3, "test")
        dg.validate(crawl)
        assert dg.to_global_graph() == crawl

    def test_edge_cut_invariant(self, crawl):
        labels = (np.arange(crawl.num_nodes) % 4).astype(np.int32)
        dg = assemble_edge_cut(crawl, labels, 4, "test")
        for p in dg.partitions:
            src, _ = p.global_edges()
            assert np.all(dg.masters[src] == p.host)

    def test_weighted(self):
        g = erdos_renyi(20, 60, seed=1).with_random_weights(seed=1)
        labels = (np.arange(20) % 2).astype(np.int32)
        dg = assemble_edge_cut(g, labels, 2, "test")
        dg.validate(g)
        assert dg.to_global_graph() == g

    def test_invalid_labels(self, crawl):
        with pytest.raises(ValueError):
            assemble_edge_cut(crawl, np.zeros(3, dtype=np.int32), 2, "t")
        bad = np.full(crawl.num_nodes, 9, dtype=np.int32)
        with pytest.raises(ValueError):
            assemble_edge_cut(crawl, bad, 2, "t")


class TestXtraPulp:
    def test_valid_partition(self, crawl):
        dg = XtraPulp(4).partition(crawl)
        dg.validate(crawl)
        assert dg.policy_name == "XtraPulp"
        assert dg.invariant == "edge-cut"

    def test_respects_balance_constraints(self, crawl):
        dg = XtraPulp(4, vertex_imbalance=1.1, edge_imbalance=1.5).partition(crawl)
        assert dg.node_balance() <= 1.1 + 1e-9
        assert dg.edge_balance() <= 1.5 + 1e-9

    def test_better_cut_than_hash(self, crawl):
        src, dst = crawl.edges()

        def cut(labels):
            return float((labels[src] != labels[dst]).mean())

        xp = XtraPulp(4).partition(crawl)
        hp = hash_partition(crawl, 4)
        assert cut(xp.masters) < cut(hp.masters)

    def test_improves_on_structured_graph(self):
        """On a grid, LP should find a far better cut than hashing."""
        g = grid_graph(20, 20)
        src, dst = g.edges()
        xp = XtraPulp(4, outer_iters=4).partition(g)
        hp = hash_partition(g, 4)
        cut_xp = float((xp.masters[src] != xp.masters[dst]).mean())
        cut_hash = float((hp.masters[src] != hp.masters[dst]).mean())
        assert cut_xp < 0.5 * cut_hash

    def test_deterministic(self, crawl):
        a = XtraPulp(4).partition(crawl)
        b = XtraPulp(4).partition(crawl)
        assert np.array_equal(a.masters, b.masters)

    def test_slower_than_cusp_streaming(self, crawl):
        """Figure 3's headline: CuSP partitions faster than XtraPulp."""
        xp_time = XtraPulp(4).partition(crawl).breakdown.total
        for policy in ("EEC", "HVC", "CVC"):
            cusp_time = CuSP(4, policy).partition(crawl).breakdown.total
            assert xp_time > cusp_time

    def test_more_iterations_cost_more(self, crawl):
        fast = XtraPulp(4, outer_iters=1).partition(crawl).breakdown.total
        slow = XtraPulp(4, outer_iters=6).partition(crawl).breakdown.total
        assert slow > fast

    def test_partition_labels_shape(self, crawl):
        labels = XtraPulp(3).partition_labels(crawl)
        assert labels.shape == (crawl.num_nodes,)
        assert labels.min() >= 0 and labels.max() < 3

    def test_single_partition(self, crawl):
        dg = XtraPulp(1).partition(crawl)
        dg.validate(crawl)
        assert dg.replication_factor() == 1.0

    def test_empty_graph(self):
        g = CSRGraph.empty(8)
        dg = XtraPulp(2).partition(g)
        dg.validate(g)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            XtraPulp(0)
        with pytest.raises(ValueError):
            XtraPulp(2, outer_iters=0)
        with pytest.raises(ValueError):
            XtraPulp(2, vertex_imbalance=0.9)


class TestHashPartition:
    def test_valid(self, crawl):
        dg = hash_partition(crawl, 4)
        dg.validate(crawl)

    def test_balanced_masters(self):
        g = CSRGraph.empty(4000)
        dg = hash_partition(g, 8)
        counts = dg.master_counts()
        assert counts.max() <= 1.2 * counts.mean()

    def test_invalid(self, crawl):
        with pytest.raises(ValueError):
            hash_partition(crawl, 0)
