"""The dynamic host-isolation race detector (``repro.analysis.isolation``).

The determinism contract says a mapped host task touches only its own
host's state and charges only through its ``HostView``.  These tests
plant deliberate contract breaches inside ``ParallelExecutor`` tasks and
assert the detector raises an :class:`IsolationViolation` that names the
offending (host, phase, attribute) — and that sanctioned runs (the whole
pipeline, ``chain()``, serial execution, the merge barrier) pass with a
non-empty access log.
"""

import pytest

from repro.analysis.isolation import (
    IsolationMonitor,
    IsolationViolation,
    OwnedProxy,
    current_context,
)
from repro.core import CuSP
from repro.graph import erdos_renyi
from repro.runtime.comm import Communicator
from repro.runtime.executor import HostTask, ParallelExecutor, SerialExecutor
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.stats import PhaseStats


def make_stats(num_hosts=3, name="Edge Assignment"):
    comm = Communicator(num_hosts, injector=FaultInjector(FaultPlan()))
    return PhaseStats(name=name, comm=comm, num_hosts=num_hosts)


def idle(view):
    view.add_compute(1.0)


class TestPlantedViolations:
    """Each planted breach must die with an actionable message."""

    def run_planted(self, evil, label="evil", num_hosts=3):
        ph = make_stats(num_hosts=num_hosts)
        executor = ParallelExecutor(check_isolation=True)
        tasks = [HostTask(0, evil, label=label)] + [
            HostTask(h, idle) for h in range(1, num_hosts)
        ]
        with pytest.raises(IsolationViolation) as exc_info:
            executor.run(ph, tasks)
        assert executor.monitor.violations
        return ph, exc_info.value

    def test_cross_host_stats_charge(self):
        """A task charging *another host's* compute on the shared
        PhaseStats — the exact mutation the contract forbids."""
        holder = {}

        def evil(view):
            view.add_compute(1.0)
            holder["ph"].add_compute(2, 1.0)  # bypasses the view

        holder["ph"] = ph = make_stats()
        executor = ParallelExecutor(check_isolation=True)
        tasks = [HostTask(0, evil, label="evil"),
                 HostTask(1, idle), HostTask(2, idle)]
        with pytest.raises(IsolationViolation) as exc_info:
            executor.run(ph, tasks)
        err = exc_info.value
        assert err.host == 0
        assert err.phase == "Edge Assignment"
        assert err.attribute == "PhaseStats.add_compute"
        message = str(err)
        assert "host 0" in message
        assert "Edge Assignment" in message
        assert "evil" in message
        assert "host 2" in message  # names the host whose state was touched

    def test_shared_communicator_send(self):
        ph_box = []

        def evil(view):
            ph_box[0].comm.send(0, 1, b"x", tag="t", nbytes=8)

        ph = make_stats()
        ph_box.append(ph)
        executor = ParallelExecutor(check_isolation=True)
        with pytest.raises(IsolationViolation) as exc_info:
            executor.run(ph, [HostTask(0, evil), HostTask(1, idle)])
        assert exc_info.value.attribute == "Communicator.send"

    def test_collective_inside_task(self):
        ph_box = []

        def evil(view):
            ph_box[0].comm.barrier()

        ph = make_stats()
        ph_box.append(ph)
        executor = ParallelExecutor(check_isolation=True)
        with pytest.raises(IsolationViolation) as exc_info:
            executor.run(ph, [HostTask(0, evil), HostTask(1, idle)])
        assert exc_info.value.attribute == "Communicator.barrier"

    def test_draining_another_hosts_queue(self):
        ph_box = []

        def evil(view):
            ph_box[0].comm.recv_all(1, tag="t")  # host 0 reads host 1's mail

        ph = make_stats()
        ph_box.append(ph)
        executor = ParallelExecutor(check_isolation=True)
        with pytest.raises(IsolationViolation) as exc_info:
            executor.run(ph, [HostTask(0, evil), HostTask(1, idle)])
        assert exc_info.value.attribute == "Communicator.recv_all"

    def test_writing_through_another_hosts_view(self):
        views = {}

        def leak(view):
            views[view.host] = view
            view.add_compute(1.0)

        ph = make_stats()
        executor = ParallelExecutor(check_isolation=True)
        executor.run(ph, [HostTask(h, leak) for h in range(3)])

        def evil(view):
            views[2].add_compute(1.0)  # host 0 charges via host 2's view

        with pytest.raises(IsolationViolation) as exc_info:
            executor.run(ph, [HostTask(0, evil), HostTask(1, idle)])
        assert exc_info.value.attribute == "HostView.add_compute"
        assert exc_info.value.host == 0


class TestOwnedProxy:
    def test_guards_foreign_access_inside_tasks(self):
        state = [OwnedProxy({"count": 0}, h, name="rule-state")
                 for h in range(2)]

        def own(view):
            state[view.host]["count"] = view.host  # own state: fine
            return state[view.host]["count"]

        ph = make_stats(num_hosts=2)
        executor = ParallelExecutor(check_isolation=True)
        assert executor.run(ph, [HostTask(0, own), HostTask(1, own)]) == [0, 1]

        def evil(view):
            state[1]["count"] = 99

        with pytest.raises(IsolationViolation) as exc_info:
            executor.run(ph, [HostTask(0, evil), HostTask(1, idle)])
        assert exc_info.value.attribute == "rule-state[]"

    def test_transparent_outside_any_task(self):
        proxy = OwnedProxy({"x": 1}, owner_host=5)
        assert proxy["x"] == 1
        proxy["x"] = 2
        assert proxy["x"] == 2
        assert "host=5" in repr(proxy)

    def test_attribute_forwarding(self):
        class Counter:
            def __init__(self):
                self.n = 0

        proxy = OwnedProxy(Counter(), 0)
        proxy.n = 7
        assert proxy.n == 7


class TestSanctionedPaths:
    def test_full_pipeline_is_clean_and_observed(self):
        graph = erdos_renyi(200, 1400, seed=3)
        executor = ParallelExecutor(check_isolation=True)
        CuSP(4, "CVC", executor=executor).partition(graph)
        monitor = executor.monitor
        assert not monitor.violations
        assert monitor.num_accesses > 0
        assert monitor.accesses_for(0)
        assert "0 violation(s)" in monitor.summary()
        phases = {a.phase for a in monitor.accesses}
        assert len(phases) > 1  # observed across multiple phases

    def test_parallel_checked_executor_name(self):
        from repro.runtime.executor import make_executor

        graph = erdos_renyi(150, 900, seed=4)
        dg_checked = CuSP(
            4, "CVC", executor=make_executor("parallel-checked")
        ).partition(graph)
        dg_serial = CuSP(4, "CVC", executor="serial").partition(graph)
        import numpy as np

        assert np.array_equal(dg_checked.masters, dg_serial.masters)

    def test_serial_executor_never_enters_a_context(self):
        ph = make_stats()

        def body(view):
            assert current_context() is None
            ph.add_compute(view.host, 1.0)  # direct charges legal serially

        SerialExecutor().run(ph, [HostTask(h, body) for h in range(3)])
        assert ph.compute_units.sum() == 3.0

    def test_single_task_runs_direct(self):
        # One task has no concurrency: the executor keeps the direct
        # (shared-state) path, so no context and no recorded accesses.
        ph = make_stats(num_hosts=1)
        executor = ParallelExecutor(check_isolation=True)

        def body(view):
            assert current_context() is None
            view.add_compute(1.0)

        executor.run(ph, [HostTask(0, body)])
        assert not executor.monitor.violations

    def test_main_thread_context_is_none(self):
        assert current_context() is None

    def test_monitor_op_indices_are_per_task(self):
        ph = make_stats(num_hosts=2)
        executor = ParallelExecutor(check_isolation=True)

        def busy(view):
            for _ in range(3):
                view.add_compute(1.0)

        executor.run(ph, [HostTask(0, busy), HostTask(1, busy)])
        monitor = executor.monitor
        for host in (0, 1):
            ops = [a.op_index for a in monitor.accesses_for(host)]
            assert ops == [1, 2, 3]

    def test_access_log_is_bounded_but_count_is_not(self):
        monitor = IsolationMonitor(max_recorded=2)
        ph = make_stats(num_hosts=2)
        executor = ParallelExecutor(check_isolation=True, monitor=monitor)

        def busy(view):
            for _ in range(5):
                view.add_compute(1.0)

        executor.run(ph, [HostTask(0, busy), HostTask(1, busy)])
        assert len(monitor.accesses) == 2
        assert monitor.num_accesses == 10
