"""Robustness suite (``-m faults``): corruption-proof checkpoints,
payload corruption, straggler supervision, cross-process resume, and the
seeded chaos campaign.

Everything here defends one guarantee: whatever the fault family throws
at a run — torn checkpoint writes, corrupted payloads, quarantined
stragglers, a kill -9 mid-checkpoint — the final partition is
bit-identical to the fault-free run and every conservation law holds.
"""

import json

import numpy as np
import pytest

from repro.chaos import derive_scenarios, run_campaign
from repro.cli import main
from repro.core import (
    CheckpointCorruptionError,
    CuSP,
    PartitionCheckpoint,
    load_partitions,
    save_partitions,
)
from repro.graph import erdos_renyi, write_gr
from repro.runtime.colfab import ColumnSchema, MessageBatch
from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    HostCrash,
    RecoveryManager,
    UnrecoverableClusterError,
)
from repro.runtime.supervisor import DeadlinePolicy

from .test_faults import assert_same_partition, run, small_graph

pytestmark = pytest.mark.faults


META = {"graph": "test", "k": 4}


# ----------------------------------------------------------------------
# Corruption-proof durable checkpoints
# ----------------------------------------------------------------------
class TestCheckpointIntegrity:
    def test_atomic_save_digests_and_roundtrip(self, tmp_path):
        ckpt = PartitionCheckpoint(tmp_path, meta=META)
        arr = np.arange(100, dtype=np.int64)
        ckpt.save("reading", ranges=arr)
        # Atomic protocol leaves no tmp files behind, and the manifest
        # records file + per-array digests.
        assert not list(tmp_path.glob("*.tmp"))
        doc = json.loads((tmp_path / "checkpoint.json").read_text())
        assert doc["format_version"] == 2
        assert "file_sha256" in doc["digests"]["reading"]
        assert "ranges" in doc["digests"]["reading"]["arrays"]
        assert "manifest_sha256" in doc
        ckpt.verify("reading", deep=True)
        assert np.array_equal(ckpt.load("reading")["ranges"], arr)

    def test_truncated_stage_file_is_detected(self, tmp_path):
        ckpt = PartitionCheckpoint(tmp_path, meta=META)
        ckpt.save("masters", masters=np.arange(50))
        path = tmp_path / "masters.npz"
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 3])
        with pytest.raises(CheckpointCorruptionError, match="torn|corrupt"):
            ckpt.load("masters")

    def test_tampered_manifest_fails_self_digest_on_resume(self, tmp_path):
        ckpt = PartitionCheckpoint(tmp_path, meta=META)
        ckpt.save("reading", ranges=np.arange(10))
        manifest = tmp_path / "checkpoint.json"
        doc = json.loads(manifest.read_text())
        doc["completed"] = ["reading", "masters"]  # forged progress
        manifest.write_text(json.dumps(doc))
        with pytest.raises(CheckpointCorruptionError, match="self-digest"):
            PartitionCheckpoint(tmp_path, meta=META, resume=True)

    def test_resume_requires_a_directory(self):
        with pytest.raises(ValueError, match="directory"):
            PartitionCheckpoint(resume=True)

    def test_resume_empty_directory_is_an_actionable_error(self, tmp_path):
        with pytest.raises(ValueError, match="missing or unreadable"):
            PartitionCheckpoint(tmp_path, meta=META, resume=True)

    def test_resume_meta_mismatch_names_the_keys(self, tmp_path):
        PartitionCheckpoint(tmp_path, meta=META).save(
            "reading", ranges=np.arange(4)
        )
        with pytest.raises(ValueError, match="k"):
            PartitionCheckpoint(
                tmp_path, meta={"graph": "test", "k": 8}, resume=True
            )

    def test_resume_falls_back_to_longest_verified_prefix(self, tmp_path):
        ckpt = PartitionCheckpoint(tmp_path, meta=META)
        ckpt.save("reading", ranges=np.arange(8))
        ckpt.save("masters", masters=np.arange(20))
        bad = tmp_path / "masters.npz"
        bad.write_bytes(bad.read_bytes()[:10])
        reopened = PartitionCheckpoint(tmp_path, meta=META, resume=True)
        assert reopened.completed() == ["reading"]
        assert reopened.fallback_stage == "masters"
        # The fallback is durable: a second resume sees the same prefix.
        again = PartitionCheckpoint(tmp_path, meta=META, resume=True)
        assert again.completed() == ["reading"]

    def test_torn_write_is_detected_and_repaired(self, tmp_path):
        injector = FaultInjector(
            FaultPlan(seed=3, torn_checkpoints=("masters",))
        )
        ckpt = PartitionCheckpoint(tmp_path, meta=META, injector=injector)
        masters = np.arange(64) % 4
        ckpt.save("masters", masters=masters)
        assert ckpt.torn_repairs == 1
        assert ("torn-checkpoint", None, "masters") in injector.events
        # The repaired file verifies and round-trips the exact arrays.
        ckpt.verify("masters", deep=True)
        assert np.array_equal(ckpt.load("masters")["masters"], masters)
        # One tear per planned stage: saving again stays clean.
        ckpt.save("masters", masters=masters)
        assert ckpt.torn_repairs == 1

    def test_foreign_checkpoint_is_reset_not_replayed(self, tmp_path):
        PartitionCheckpoint(tmp_path, meta=META).save(
            "reading", ranges=np.arange(4)
        )
        other = PartitionCheckpoint(
            tmp_path, meta={"graph": "other", "k": 2}
        )
        assert other.completed() == []
        assert not list(tmp_path.glob("*.npz"))


# ----------------------------------------------------------------------
# Partition directory schema validation (satellite 2)
# ----------------------------------------------------------------------
class TestPartitionSchema:
    def test_save_stamps_format_version_and_loads(self, tmp_path):
        _, dg = run(None)
        save_partitions(dg, tmp_path)
        meta = json.loads((tmp_path / "meta.json").read_text())
        assert meta["format_version"] == 1
        loaded = load_partitions(tmp_path)
        assert_same_partition(loaded, dg)

    def test_missing_meta_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="meta.json"):
            load_partitions(tmp_path)

    def test_unparsable_meta_names_the_file(self, tmp_path):
        (tmp_path / "meta.json").write_text("{ not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_partitions(tmp_path)

    def test_missing_required_key_is_named(self, tmp_path):
        _, dg = run(None)
        save_partitions(dg, tmp_path)
        meta = json.loads((tmp_path / "meta.json").read_text())
        del meta["invariant"]
        (tmp_path / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="invariant"):
            load_partitions(tmp_path)

    def test_unknown_format_version_is_rejected(self, tmp_path):
        _, dg = run(None)
        save_partitions(dg, tmp_path)
        meta = json.loads((tmp_path / "meta.json").read_text())
        meta["format_version"] = 99
        (tmp_path / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="version 99"):
            load_partitions(tmp_path)

    def test_incomplete_part_blob_is_rejected(self, tmp_path):
        _, dg = run(None)
        save_partitions(dg, tmp_path)
        np.savez(tmp_path / "part0.npz", wrong=np.arange(3))
        with pytest.raises(ValueError, match="global_ids"):
            load_partitions(tmp_path)


# ----------------------------------------------------------------------
# Fault plan specs for the new families (satellite 1 + tentpole)
# ----------------------------------------------------------------------
class TestFaultPlanSpecs:
    def test_corrupt_and_torn_compact_roundtrip(self):
        plan = FaultPlan.from_spec(
            "seed=3,corrupt=0.25,torn=masters,torn=reading"
        )
        assert plan.corrupt_rate == 0.25
        assert plan.torn_checkpoints == ("masters", "reading")
        assert FaultPlan.from_spec(plan.describe()) == plan

    def test_json_spec_covers_new_fields(self):
        plan = FaultPlan.from_spec(json.dumps({
            "seed": 9,
            "corrupt_rate": 0.1,
            "torn_checkpoints": ["assignment"],
        }))
        assert plan.corrupt_rate == 0.1
        assert plan.torn_checkpoints == ("assignment",)

    def test_file_spec_error_names_the_plan_file(self, tmp_path):
        missing = tmp_path / "nope" / "plan.json"
        with pytest.raises(ValueError, match="plan.json"):
            FaultPlan.from_spec(f"@{missing}")


# ----------------------------------------------------------------------
# Payload corruption (tentpole: per-block checksums -> charged re-request)
# ----------------------------------------------------------------------
class TestCorruptPayload:
    def test_identity_and_retry_conservation(self):
        plan = FaultPlan(seed=21, corrupt_rate=0.3)
        cusp, dg = run(plan)
        events = [
            e for e in cusp.last_fault_report.events
            if e[0] == "corrupt-payload"
        ]
        assert events, "corrupt_rate=0.3 should fire on this graph"
        # Each corruption charges a re-request word plus the retransmit:
        # weight 2 in the conservation law CommSan already verified.
        assert dg.breakdown.retry_messages() == 2 * len(events)
        _, clean = run(None)
        assert_same_partition(dg, clean)

    def test_fabrics_agree_on_corruption(self):
        plan = FaultPlan(seed=21, corrupt_rate=0.3)
        col, col_dg = run(plan, fabric="columnar")
        sca, sca_dg = run(plan, fabric="scalar")
        assert (
            col.last_fault_report.counts() == sca.last_fault_report.counts()
        )
        assert_same_partition(col_dg, sca_dg)

    def test_batch_checksum_detects_bit_flips(self):
        schema = ColumnSchema((("ids", np.int64),), scalars=("count",))
        batch = MessageBatch(
            schema, columns=[np.arange(16, dtype=np.int64)], scalars=[3.0]
        )
        reference = batch.checksum()
        flipped = np.arange(16, dtype=np.int64)
        flipped[7] ^= 1
        assert (
            MessageBatch(schema, [flipped], [3.0]).checksum() != reference
        )
        assert (
            MessageBatch(schema, [np.arange(16)], [4.0]).checksum()
            != reference
        )


# ----------------------------------------------------------------------
# Phase deadlines and straggler mitigation (tentpole)
# ----------------------------------------------------------------------
class TestSupervision:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="soft_factor"):
            DeadlinePolicy(soft_factor=0.5).validate()
        with pytest.raises(ValueError, match="soft_factor"):
            DeadlinePolicy(soft_factor=5.0, hard_factor=2.0).validate()
        with pytest.raises(ValueError, match="min_baseline"):
            DeadlinePolicy(min_baseline=-1.0).validate()
        with pytest.raises(ValueError):
            CuSP(4, "CVC", supervise=DeadlinePolicy(soft_factor=0.1))

    def test_straggler_is_quarantined_and_partition_unchanged(self):
        plan = FaultPlan(seed=5, slow_hosts={1: 0.01})
        cusp, dg = run(plan, supervise=True)
        sup = cusp.last_supervisor_report
        assert sup is not None
        assert sup.mitigations, "a 100x-slow host must breach the hard deadline"
        assert all(host == 1 for _, host in sup.mitigations)
        report = cusp.last_fault_report
        assert report.straggler_log
        assert any(e[0] == "straggler" for e in report.events)
        assert "quarantined" in report.summary()
        _, clean = run(None)
        assert_same_partition(dg, clean)

    def test_unsupervised_run_records_no_mitigation(self):
        plan = FaultPlan(seed=5, slow_hosts={1: 0.01})
        cusp, dg = run(plan)  # supervise defaults to off
        assert cusp.last_supervisor_report is None
        assert cusp.last_fault_report.straggler_log == ()
        _, clean = run(None)
        assert_same_partition(dg, clean)

    def test_quarantine_never_leaves_zero_healthy_hosts(self):
        recovery = RecoveryManager(2)
        assert recovery.on_straggler(0, "Master Assignment")
        assert recovery.quarantined[0]
        # Host 1 is the last healthy host: mitigation must refuse.
        assert not recovery.on_straggler(1, "Edge Assignment")
        assert not recovery.quarantined[1]
        # Dead or already-quarantined hosts are refused outright.
        assert not recovery.on_straggler(0, "Edge Assignment")

    def test_quarantined_slots_migrate_to_healthy_hosts(self):
        recovery = RecoveryManager(4)
        assert recovery.on_straggler(2, "Master Assignment")
        executors = recovery.executors()
        assert executors[2] != 2
        assert recovery.alive[2]  # quarantined, not dead
        assert ("Master Assignment", 2) in recovery.straggler_log


# ----------------------------------------------------------------------
# Cross-process resume (tentpole)
# ----------------------------------------------------------------------
class TestResume:
    def test_kill_and_resume_is_bit_exact(self, tmp_path):
        graph = small_graph()
        plan = FaultPlan(
            seed=13, crashes=(HostCrash(host=1, phase=2, op_count=10),)
        )
        # Uninterrupted reference: the crash is recovered in-process.
        ref, ref_dg = run(plan, graph=graph)
        # kill -9: zero retry budget turns the planned crash fatal,
        # leaving a partial durable checkpoint.
        victim = CuSP(4, "CVC", fault_plan=plan, max_retries=0,
                      checkpoint_dir=tmp_path)
        with pytest.raises(UnrecoverableClusterError):
            victim.partition(graph)
        resumed = CuSP(4, "CVC", fault_plan=plan, checkpoint_dir=tmp_path,
                       resume=True, sanitizer=True)
        dg = resumed.partition(graph)
        assert resumed.sanitizer.violations == []
        assert_same_partition(dg, ref_dg)
        # TimeBreakdown is reproduced exactly, phase by phase — including
        # the failed attempt the resumed process replays live.
        assert [p.name for p in dg.breakdown.phases] == [
            p.name for p in ref_dg.breakdown.phases
        ]
        assert dg.breakdown.phases == ref_dg.breakdown.phases
        assert (
            resumed.last_fault_report.events == ref.last_fault_report.events
        )
        assert (
            resumed.last_fault_report.replays == ref.last_fault_report.replays
        )

    def test_resume_after_clean_interrupt_skips_completed_phases(
        self, tmp_path
    ):
        graph = small_graph()
        ref, ref_dg = run(None, graph=graph)
        # A full run leaves all four stages checkpointed; resuming from
        # them must replay nothing and still produce identical output.
        first = CuSP(4, "CVC", checkpoint_dir=tmp_path)
        first.partition(graph)
        resumed = CuSP(4, "CVC", checkpoint_dir=tmp_path, resume=True,
                       sanitizer=True)
        dg = resumed.partition(graph)
        assert resumed.sanitizer.violations == []
        assert_same_partition(dg, ref_dg)
        assert dg.breakdown.phases == ref_dg.breakdown.phases

    def test_resume_falls_back_past_a_truncated_stage(self, tmp_path):
        graph = small_graph()
        _, ref_dg = run(None, graph=graph)
        CuSP(4, "CVC", checkpoint_dir=tmp_path).partition(graph)
        bad = tmp_path / "assignment.npz"
        bad.write_bytes(bad.read_bytes()[: bad.stat().st_size // 3])
        resumed = CuSP(4, "CVC", checkpoint_dir=tmp_path, resume=True,
                       sanitizer=True)
        dg = resumed.partition(graph)
        assert resumed.sanitizer.violations == []
        assert_same_partition(dg, ref_dg)

    def test_resume_without_checkpoint_dir_is_rejected(self):
        with pytest.raises(ValueError, match="checkpoint"):
            CuSP(4, "CVC", resume=True)

    def test_resume_from_empty_directory_is_an_error(self, tmp_path):
        cusp = CuSP(4, "CVC", checkpoint_dir=tmp_path / "empty", resume=True)
        with pytest.raises(ValueError, match="resume"):
            cusp.partition(small_graph())


# ----------------------------------------------------------------------
# Satellite 3: crash recovery under columnar fabric + checked executor
# ----------------------------------------------------------------------
class TestCombinedRobustness:
    def test_crash_recovery_with_columnar_fabric_and_checked_executor(self):
        from repro.runtime.executor import make_executor

        plan = FaultPlan(
            seed=17,
            send_failure_rate=0.02,
            crashes=(HostCrash(host=2, phase=2, op_count=15),),
        )
        executor = make_executor("parallel-checked")
        cusp, dg = run(plan, executor=executor, fabric="columnar")
        # One run, three independent watchdogs, zero findings each:
        # CommSan (asserted inside run()), the host-isolation race
        # detector, and bit-identity against the fault-free partition.
        assert executor.monitor is not None
        assert executor.monitor.violations == []
        assert cusp.last_fault_report.replays >= 1
        _, clean = run(None)
        assert_same_partition(dg, clean)


# ----------------------------------------------------------------------
# Chaos campaign (tentpole)
# ----------------------------------------------------------------------
class TestChaosCampaign:
    def test_scenario_derivation_is_deterministic_and_spans_families(self):
        a = derive_scenarios(14, seed=7)
        b = derive_scenarios(14, seed=7)
        assert a == b
        assert {s.kind for s in a} == {
            "message-faults", "boundary-crash", "midphase-crash",
            "straggler", "corrupt-payload", "torn-checkpoint",
            "kill-resume",
        }
        assert derive_scenarios(3, seed=8) != derive_scenarios(3, seed=7)
        with pytest.raises(ValueError):
            derive_scenarios(0, seed=7)

    def test_campaign_passes_on_a_small_graph(self):
        # One scenario per family, on a smaller graph than the CLI gate.
        report = run_campaign(
            plans=7, seed=7, graph=erdos_renyi(150, 900, seed=4)
        )
        assert report.ok(), report.render_text()
        assert len(report.results) == 7
        assert "survived bit-identically" in report.summary()

    def test_cli_chaos_gate(self, capsys):
        assert main(["chaos", "--plans", "2", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "OK:" in out
        assert "2 chaos plan(s)" in out


# ----------------------------------------------------------------------
# CLI: --resume / --supervise walkthroughs
# ----------------------------------------------------------------------
class TestResumeCli:
    @pytest.fixture()
    def graph_file(self, tmp_path):
        path = tmp_path / "g.gr"
        write_gr(small_graph(), path)
        return str(path)

    def test_kill_then_resume_via_cli(self, graph_file, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        spec = "seed=13,crash=1@2:10"
        code = main([
            "partition", graph_file, "-k", "4", "-p", "CVC",
            "--inject-faults", spec, "--checkpoint-dir", ckpt,
            "--max-retries", "0",
        ])
        assert code == 1  # the kill
        assert "partitioning failed" in capsys.readouterr().err
        code = main([
            "partition", graph_file, "-k", "4", "-p", "CVC",
            "--inject-faults", spec, "--resume", ckpt, "--commsan",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 violation(s)" in out

    def test_resume_conflicting_directories_rejected(self, graph_file):
        with pytest.raises(SystemExit, match="different directories"):
            main([
                "partition", graph_file, "-k", "4",
                "--resume", "/tmp/a", "--checkpoint-dir", "/tmp/b",
            ])

    def test_resume_nonexistent_checkpoint_is_actionable(
        self, graph_file, tmp_path
    ):
        with pytest.raises(SystemExit, match="cannot resume"):
            main([
                "partition", graph_file, "-k", "4",
                "--resume", str(tmp_path / "never-written"),
            ])

    def test_supervise_flag_reports_mitigation(self, graph_file, capsys):
        code = main([
            "partition", graph_file, "-k", "4", "-p", "CVC",
            "--inject-faults", "seed=5,slow=1:0.01", "--supervise",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "supervision" in out
        assert "quarantined" in out
