"""Tests for distributed betweenness centrality (Brandes)."""

import numpy as np
import pytest

from repro.analytics import (
    BCResult,
    bc_reference,
    betweenness_centrality,
    default_source,
)
from repro.core import CuSP, WindowedPartitioner
from repro.graph import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    get_dataset,
    grid_graph,
    path_graph,
    star_graph,
)


@pytest.fixture(scope="module")
def crawl():
    return get_dataset("gsh", "tiny")


class TestReference:
    def test_path_dependencies(self):
        # On 0->1->2->3->4 from source 0: delta = [4, 3, 2, 1, 0].
        ref = bc_reference(path_graph(5), 0)
        assert ref.tolist() == [4.0, 3.0, 2.0, 1.0, 0.0]

    def test_star_center(self):
        # Hub 0 -> leaves: no leaf lies between any pair, so every
        # non-source dependency is 0 (the source's own delta equals its
        # successor count and is excluded from betweenness).
        ref = bc_reference(star_graph(5), 0)
        assert np.allclose(ref[1:], 0.0)
        assert ref[0] == pytest.approx(5.0)

    def test_diamond_counts_paths(self):
        # 0->1, 0->2, 1->3, 2->3: two shortest paths to 3; each middle
        # vertex carries half a dependency.
        g = CSRGraph.from_edges([0, 0, 1, 2], [1, 2, 3, 3], num_nodes=4)
        ref = bc_reference(g, 0)
        assert ref[1] == pytest.approx(0.5)
        assert ref[2] == pytest.approx(0.5)
        # The source's own dependency (excluded from betweenness) is
        # (1 + 0.5) for each of its two successors.
        assert ref[0] == pytest.approx(3.0)

    def test_matches_networkx(self):
        # networkx collapses parallel edges, and sigma counts paths per
        # edge, so compare on the simplified graph.
        nx = pytest.importorskip("networkx")
        from repro.graph import simplify

        g = simplify(erdos_renyi(40, 200, seed=17))
        G = nx.DiGraph()
        G.add_nodes_from(range(40))
        G.add_edges_from(zip(*g.edges()))
        # Sum of single-source dependencies over all sources equals
        # unnormalized betweenness.
        total = np.zeros(40)
        for s in range(40):
            dep = bc_reference(g, s)
            dep[s] = 0.0  # Brandes excludes the source's own dependency
            total += dep
        nx_bc = nx.betweenness_centrality(G, normalized=False)
        for v in range(40):
            assert total[v] == pytest.approx(nx_bc[v], abs=1e-9)


class TestDistributed:
    @pytest.mark.parametrize("policy", ["EEC", "CVC", "HVC", "SVC", "JVC"])
    def test_matches_reference(self, policy, crawl):
        src = default_source(crawl)
        dg = CuSP(4, policy, sync_rounds=2).partition(crawl)
        res = betweenness_centrality(dg, src)
        assert np.allclose(res.dependencies, bc_reference(crawl, src))

    @pytest.mark.parametrize("k", [1, 2, 5, 8])
    def test_host_counts(self, k):
        g = grid_graph(10, 10)
        dg = CuSP(k, "CVC").partition(g)
        res = betweenness_centrality(dg, 0)
        assert np.allclose(res.dependencies, bc_reference(g, 0))

    def test_sigma_counts_paths(self):
        g = CSRGraph.from_edges([0, 0, 1, 2], [1, 2, 3, 3], num_nodes=4)
        dg = CuSP(2, "HVC").partition(g)
        res = betweenness_centrality(dg, 0)
        assert res.sigma[3] == pytest.approx(2.0)

    def test_sink_source_has_no_dependencies(self):
        g = CSRGraph.from_edges([0], [1], num_nodes=5)
        dg = CuSP(2, "EEC").partition(g)
        # Vertex 2 has no outgoing edges: nothing is reachable, so every
        # dependency is zero.
        res = betweenness_centrality(dg, 2)
        assert np.allclose(res.dependencies, 0.0)

    def test_window_partitions(self):
        g = erdos_renyi(60, 400, seed=18)
        dg = WindowedPartitioner(3, window_size=8).partition(g)
        res = betweenness_centrality(dg, 0)
        assert np.allclose(res.dependencies, bc_reference(g, 0))

    def test_time_and_phases(self, crawl):
        src = default_source(crawl)
        dg = CuSP(4, "CVC").partition(crawl)
        res = betweenness_centrality(dg, src)
        assert res.time > 0
        names = [p.name for p in res.breakdown.phases]
        assert any(n.startswith("forward") for n in names)
        assert any(n.startswith("backward") for n in names)

    def test_cycle_symmetry(self):
        g = cycle_graph(8)
        dg = CuSP(2, "EEC").partition(g)
        res = betweenness_centrality(dg, 0)
        # On a directed cycle from 0: delta[v] = 7 - dist(v) - ... strictly
        # decreasing along the cycle.
        assert np.all(np.diff(res.dependencies[1:]) < 0)
        assert np.allclose(res.dependencies, bc_reference(g, 0))
