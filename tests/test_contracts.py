"""Phase-communication contracts (``repro.analysis.contracts``).

Covers the three layers of the differential verifier: the contract
language itself, the static extraction diff (including a deliberately
mutated phase module that must be caught and named), and the CommSan
runtime sanitizer (clean on every real run; planted violations die with
an actionable (phase, host, op) message).  The ``repro contracts`` CLI
verdict/JSON conventions are exercised at the end.
"""

import json
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.contracts import (
    CommSan,
    ContractContext,
    ContractSet,
    ContractViolationError,
    OpSpec,
    PhaseContract,
    check_contracts,
)
from repro.analysis.contracts.extract import extract_phase_ops
from repro.cli import main
from repro.core import (
    PHASE_CONTRACTS,
    PHASE_NAMES,
    CuSP,
    contract_context_for,
    make_policy,
)
from repro.graph import erdos_renyi, write_gr
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.faults import FaultPlan

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"


def small_graph():
    return erdos_renyi(200, 1400, seed=13)


class TestContractModel:
    def test_op_kind_validated(self):
        with pytest.raises(ValueError, match="unknown op kind"):
            OpSpec("gossip")

    def test_topology_validated(self):
        with pytest.raises(ValueError, match="unknown topology"):
            OpSpec("p2p", tag="t", topology="ring")

    def test_p2p_requires_tag(self):
        with pytest.raises(ValueError, match="must declare a message tag"):
            OpSpec("p2p")

    def test_batched_applies_to_p2p_only(self):
        OpSpec("p2p", tag="t", batched=True)  # fine
        with pytest.raises(ValueError, match="batched"):
            OpSpec("allreduce", batched=True)

    def test_collectives_carry_no_tag(self):
        with pytest.raises(ValueError, match="carry no tag"):
            OpSpec("allreduce", tag="t")

    def test_allows_pair_topologies(self):
        all2all = OpSpec("p2p", tag="t")
        assert all2all.allows_pair(0, 3, 4)
        neighbor = OpSpec("p2p", tag="t", topology="neighbor")
        assert neighbor.allows_pair(1, 2, 4)
        assert neighbor.allows_pair(0, 3, 4)  # ring wrap-around
        assert not neighbor.allows_pair(0, 2, 4)
        master_only = OpSpec("p2p", tag="t", topology="master-only")
        assert master_only.allows_pair(0, 2, 4)
        assert master_only.allows_pair(2, 0, 4)
        assert not master_only.allows_pair(1, 2, 4)
        # Self-delivery is always legal: it costs nothing.
        assert neighbor.allows_pair(2, 2, 4)

    def test_activation_and_rounds(self):
        spec = OpSpec(
            "allreduce-async",
            rounds=lambda ctx: ctx.sync_rounds,
            when=lambda ctx: ctx.master_stateful,
        )
        stateful = ContractContext(num_hosts=4, sync_rounds=7, master_stateful=True)
        pure = ContractContext(num_hosts=4)
        assert spec.active(stateful) and not spec.active(pure)
        assert spec.active(None)  # unknown configuration: permissive
        assert spec.expected_rounds(stateful) == 7
        assert OpSpec("allgather").expected_rounds(stateful) is None

    def test_contract_set_rejects_duplicates(self):
        c = PhaseContract(phase="X")
        with pytest.raises(ValueError, match="duplicate contract"):
            ContractSet([c, c])

    def test_violation_render_names_everything(self):
        from repro.analysis.contracts import ContractViolation

        v = ContractViolation(
            phase="Edge Assignment", host=2, op="p2p tag 'x'", message="m"
        )
        text = v.render()
        assert "Edge Assignment" in text and "host 2" in text and "'x'" in text
        global_v = ContractViolation(phase="P", host=None, op="barrier", message="m")
        assert "all hosts" in global_v.render()


class TestDeclarations:
    def test_phase_names_match_framework(self):
        assert [c.phase for c in PHASE_CONTRACTS] == PHASE_NAMES

    def test_declared_modules_exist(self):
        for contract in PHASE_CONTRACTS:
            for rel in contract.modules:
                assert (SRC_ROOT / rel).is_file(), rel

    def test_context_for_pure_policy(self):
        ctx = contract_context_for(make_policy("CVC"), 4, sync_rounds=10)
        assert ctx.master_pure and not ctx.master_stateful
        assert not ctx.edge_stateful
        assert ctx.num_hosts == 4 and ctx.sync_rounds == 10

    def test_context_for_stateful_policies(self):
        fec = contract_context_for(make_policy("FEC"), 3)
        assert fec.master_stateful and not fec.master_pure
        hdrf = contract_context_for(make_policy("HDRF"), 3)
        assert hdrf.edge_stateful


class TestStaticExtraction:
    def test_tree_is_contract_clean_strict(self):
        report = check_contracts(SRC_ROOT)
        assert report.ok(strict=True), report.render_text()
        assert report.phases_checked == len(PHASE_CONTRACTS)
        assert report.ops_extracted > 0

    def test_repo_root_and_package_root_resolve_identically(self):
        a = check_contracts(SRC_ROOT)
        b = check_contracts(SRC_ROOT.parent.parent)  # the repo root
        assert a.render_text() == b.render_text()

    @pytest.fixture()
    def mutated_tree(self, tmp_path):
        """A copy of the package with an unaccounted send added to the
        masters phase — the acceptance-criteria mutation."""
        shutil.copytree(SRC_ROOT / "core", tmp_path / "core")
        with open(tmp_path / "core" / "masters_phase.py", "a") as f:
            f.write(
                "\n\ndef run_master_assignment(phase, extra):\n"
                "    for j in range(4):\n"
                "        phase.comm.send(0, j, None, tag='rogue-sync', "
                "nbytes=8)\n"
            )
        return tmp_path

    def test_mutated_phase_caught_statically(self, mutated_tree):
        report = check_contracts(mutated_tree)
        assert not report.ok()
        [finding] = report.errors
        assert finding.kind == "undeclared-op"
        assert finding.phase == "Master Assignment"
        assert "'rogue-sync'" in finding.message
        assert finding.path.endswith("masters_phase.py")
        assert finding.line > 0

    def test_dead_clause_flagged_as_warning(self):
        contract = PhaseContract(
            phase="Graph Reading",
            modules=("core/framework.py", "core/reading.py"),
            entry_points=("phase_reading",),
            ops=(OpSpec("p2p", tag="never-sent"),),
        )
        report = check_contracts(SRC_ROOT, contracts=ContractSet([contract]))
        assert report.ok(strict=False)
        assert not report.ok(strict=True)
        [finding] = report.warnings
        assert finding.kind == "dead-clause"
        assert "'never-sent'" in finding.message

    def test_undrained_declared_drain_is_flagged(self, tmp_path):
        mod = tmp_path / "core"
        mod.mkdir()
        (mod / "phase.py").write_text(
            "def run(view):\n"
            "    view.send(1, None, tag='data', nbytes=8)\n"
        )
        contract = PhaseContract(
            phase="P",
            modules=("core/phase.py",),
            entry_points=("run",),
            ops=(OpSpec("p2p", tag="data", drained=True),),
        )
        report = check_contracts(tmp_path, contracts=ContractSet([contract]))
        [finding] = report.warnings
        assert "recv_all" in finding.message

    def test_dynamic_tag_is_an_error(self, tmp_path):
        mod = tmp_path / "core"
        mod.mkdir()
        (mod / "phase.py").write_text(
            "def run(view, t):\n"
            "    view.send(1, None, tag=t, nbytes=8)\n"
        )
        contract = PhaseContract(
            phase="P", modules=("core/phase.py",), entry_points=("run",)
        )
        report = check_contracts(tmp_path, contracts=ContractSet([contract]))
        [finding] = report.errors
        assert finding.kind == "dynamic-tag"

    def test_batch_traffic_on_unbatched_clause_is_an_error(self, tmp_path):
        mod = tmp_path / "core"
        mod.mkdir()
        (mod / "phase.py").write_text(
            "from repro.runtime.colfab import MessageBatch\n"
            "def run(view, batch):\n"
            "    view.send_batch(1, batch, tag='data', nbytes=8)\n"
        )
        contract = PhaseContract(
            phase="P",
            modules=("core/phase.py",),
            entry_points=("run",),
            ops=(OpSpec("p2p", tag="data"),),
        )
        report = check_contracts(tmp_path, contracts=ContractSet([contract]))
        [finding] = report.errors
        assert finding.kind == "unbatched-op"
        assert "batched=True" in finding.message

    def test_batched_clause_accepts_batch_and_accumulator_traffic(
        self, tmp_path
    ):
        mod = tmp_path / "core"
        mod.mkdir()
        (mod / "phase.py").write_text(
            "def run(view, batch, schema):\n"
            "    view.send_batch(1, batch, tag='data', nbytes=8)\n"
            "    acc = view.accumulator()\n"
            "    acc.append(2, batch, tag='data', nbytes=8)\n"
            "    view.recv_all_batch(tag='data', schema=schema)\n"
        )
        contract = PhaseContract(
            phase="P",
            modules=("core/phase.py",),
            entry_points=("run",),
            ops=(OpSpec("p2p", tag="data", drained=True, batched=True),),
        )
        report = check_contracts(tmp_path, contracts=ContractSet([contract]))
        assert report.errors == [] and report.warnings == []

    def test_missing_module_and_entry_reported(self, tmp_path):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "present.py").write_text("def other():\n    pass\n")
        contracts = ContractSet([
            PhaseContract(
                phase="A", modules=("core/absent.py",), entry_points=("run",)
            ),
            PhaseContract(
                phase="B", modules=("core/present.py",), entry_points=("run",)
            ),
        ])
        report = check_contracts(tmp_path, contracts=contracts)
        kinds = {f.kind for f in report.errors}
        assert kinds == {"missing-module", "missing-entry"}

    def test_sync_round_hint_resolves_async_collective(self):
        """The masters phase only ever dispatches sync_round with
        blocking=False, so state.py's allreduce resolves to async and
        its blocking-guarded barrier is statically unreachable."""
        masters = PHASE_CONTRACTS.get("Master Assignment")
        ops, findings = extract_phase_ops(SRC_ROOT, masters)
        assert findings == []
        kinds = {op.kind for op in ops}
        assert "allreduce-async" in kinds
        assert "allreduce" not in kinds
        assert "barrier" not in kinds


class TestCommSanCleanRuns:
    @pytest.mark.parametrize("policy", ["CVC", "HVC", "FEC", "GVC", "BVC"])
    def test_real_runs_are_violation_free(self, policy):
        san = CommSan()
        CuSP(4, policy, sanitizer=san).partition(small_graph())
        assert san.violations == []
        assert san.phases_checked == 5
        assert san.ops_observed > 0
        assert san.context is not None  # bound by CuSP.partition

    def test_elide_ablation_is_violation_free(self):
        for policy in ("CVC", "FEC"):
            san = CommSan()
            CuSP(
                4, policy, elide_master_communication=False, sanitizer=san
            ).partition(small_graph())
            assert san.violations == []

    def test_sanitizer_true_constructs_commsan(self):
        cusp = CuSP(3, "CVC", sanitizer=True)
        assert isinstance(cusp.sanitizer, CommSan)
        cusp.partition(small_graph())
        assert cusp.sanitizer.violations == []

    def test_faulty_run_is_violation_free(self):
        plan = FaultPlan(
            seed=5, send_failure_rate=0.05, drop_rate=0.03, duplicate_rate=0.03
        )
        san = CommSan()
        CuSP(4, "FEC", fault_plan=plan, sanitizer=san).partition(small_graph())
        assert san.violations == []


class TestCommSanViolations:
    def test_undeclared_tag_names_phase_host_op(self):
        san = CommSan()
        cluster = SimulatedCluster(4, sanitizer=san)
        with pytest.raises(ContractViolationError) as excinfo:
            with cluster.phase("Master Assignment") as ph:
                ph.comm.send(1, 0, b"leak", tag="gossip", nbytes=16)
        v = excinfo.value.violation
        assert v.phase == "Master Assignment"
        assert v.host == 1
        assert v.op == "p2p tag 'gossip'"
        assert "declare an OpSpec" in v.message
        assert san.violations == [v]

    def test_mutated_phase_caught_dynamically(self, monkeypatch):
        """The acceptance-criteria mutation, dynamic half: an unaccounted
        send smuggled into the masters phase dies at the phase barrier,
        naming the phase and the op."""
        import repro.core.framework as framework

        original = framework.run_master_assignment

        def rogue(phase, *args, **kwargs):
            phase.comm.send(1, 0, b"leak", tag="rogue-sync", nbytes=8)
            return original(phase, *args, **kwargs)

        monkeypatch.setattr(framework, "run_master_assignment", rogue)
        with pytest.raises(ContractViolationError) as excinfo:
            CuSP(4, "CVC", sanitizer=True).partition(small_graph())
        v = excinfo.value.violation
        assert v.phase == "Master Assignment"
        assert v.host == 1
        assert v.op == "p2p tag 'rogue-sync'"

    def test_inactive_clause_is_a_violation(self):
        """master-broadcast is declared, but only for the non-elided
        ablation: sending it under the default configuration breaches
        the contract."""
        san = CommSan(context=ContractContext(num_hosts=2))
        cluster = SimulatedCluster(2, sanitizer=san)
        with pytest.raises(ContractViolationError) as excinfo:
            with cluster.phase("Master Assignment") as ph:
                ph.comm.send(0, 1, b"a", tag="master-broadcast", nbytes=12)
        assert "inactive" in excinfo.value.violation.message

    def test_topology_breach(self):
        contracts = ContractSet([
            PhaseContract(
                phase="ring",
                ops=(OpSpec("p2p", tag="t", topology="neighbor"),),
            )
        ])
        san = CommSan(contracts=contracts)
        cluster = SimulatedCluster(4, sanitizer=san)
        with pytest.raises(ContractViolationError) as excinfo:
            with cluster.phase("ring") as ph:
                ph.comm.send(0, 2, b"x", tag="t", nbytes=8)
        assert "'neighbor' topology" in excinfo.value.violation.message

    def test_collective_round_count_mismatch(self):
        san = CommSan(
            context=ContractContext(
                num_hosts=2, sync_rounds=3, master_pure=False,
                master_stateful=True,
            )
        )
        cluster = SimulatedCluster(2, sanitizer=san)
        with pytest.raises(ContractViolationError) as excinfo:
            with cluster.phase("Master Assignment") as ph:
                contributions = [np.zeros(2), np.zeros(2)]
                ph.comm.allreduce_sum(contributions, blocking=False)
                ph.comm.allreduce_sum(contributions, blocking=False)
        v = excinfo.value.violation
        assert v.op == "allreduce-async"
        assert "expected 3" in v.message and "observed 2" in v.message

    def test_undeclared_collective_and_barrier(self):
        san = CommSan()
        cluster = SimulatedCluster(2, sanitizer=san)
        with pytest.raises(ContractViolationError) as excinfo:
            with cluster.phase("Graph Reading") as ph:
                ph.comm.barrier()
        assert excinfo.value.violation.op == "barrier"

    def test_byte_accounting_tamper_detected(self):
        san = CommSan()
        cluster = SimulatedCluster(2, sanitizer=san)
        with pytest.raises(ContractViolationError) as excinfo:
            with cluster.phase("Graph Construction") as ph:
                ph.comm.send(0, 1, b"edges", tag="edges", nbytes=8)
                ph.comm.recv_all(1, tag="edges")
                ph.comm.sent_bytes[0, 1] += 100.0  # the tamper
        v = excinfo.value.violation
        assert v.op == "byte accounting"
        assert "mutated outside" in v.message

    def test_queue_tamper_detected(self):
        san = CommSan()
        cluster = SimulatedCluster(2, sanitizer=san)
        with pytest.raises(ContractViolationError) as excinfo:
            with cluster.phase("Graph Construction") as ph:
                ph.comm.send(0, 1, b"edges", tag="edges", nbytes=8)
                ph.comm._queues[(1, "edges")].clear()  # the tamper
        v = excinfo.value.violation
        assert v.host == 1
        assert "outside Communicator.send/recv_all" in v.message

    def test_undrained_declared_drain_detected(self):
        san = CommSan()
        cluster = SimulatedCluster(2, sanitizer=san)
        with pytest.raises(ContractViolationError) as excinfo:
            with cluster.phase("Graph Construction") as ph:
                ph.comm.send(0, 1, b"edges", tag="edges", nbytes=8)
        assert "undrained" in excinfo.value.violation.message

    def test_retry_charge_tamper_detected(self):
        plan = FaultPlan(seed=1, duplicate_rate=0.9)
        from repro.runtime.faults import FaultInjector

        san = CommSan()
        cluster = SimulatedCluster(
            2, injector=FaultInjector(plan), sanitizer=san
        )
        with pytest.raises(ContractViolationError) as excinfo:
            with cluster.phase("Graph Construction") as ph:
                for _ in range(20):
                    ph.comm.send(0, 1, b"edges", tag="edges", nbytes=8)
                ph.comm.recv_all(1, tag="edges")
                assert ph.comm.retry_messages[0, 1] >= 1.0  # duplicates charged
                ph.comm.retry_messages[0, 1] = 0.0  # the tamper
        v = excinfo.value.violation
        assert v.op == "retry transport"
        assert "exactly once" in v.message

    def test_violations_accumulate_without_masking_the_original_error(self):
        san = CommSan()
        cluster = SimulatedCluster(2, sanitizer=san)
        with pytest.raises(RuntimeError, match="boom"):
            with cluster.phase("Graph Reading") as ph:
                ph.comm.send(0, 1, b"x", tag="oops", nbytes=8)
                raise RuntimeError("boom")
        assert len(san.violations) == 1
        assert san.violations[0].op == "p2p tag 'oops'"

    def test_unknown_phase_names_still_get_conservation_checks(self):
        san = CommSan()
        cluster = SimulatedCluster(2, sanitizer=san)
        # No contract for "warmup": admission is not checked...
        with cluster.phase("warmup") as ph:
            ph.comm.send(0, 1, b"x", tag="anything", nbytes=8)
        assert san.violations == []
        # ...but conservation still is.
        with pytest.raises(ContractViolationError):
            with cluster.phase("warmup") as ph:
                ph.comm.send(0, 1, b"x", tag="anything", nbytes=8)
                ph.comm.sent_bytes[0, 1] += 1.0


class TestContractsCLI:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["contracts", str(SRC_ROOT), "--strict"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK:")

    def test_json_output(self, capsys):
        assert main(["contracts", str(SRC_ROOT), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["phases_checked"] == 5
        assert doc["findings"] == []

    def test_mutated_tree_exits_nonzero(self, tmp_path, capsys):
        shutil.copytree(SRC_ROOT / "core", tmp_path / "core")
        with open(tmp_path / "core" / "masters_phase.py", "a") as f:
            f.write(
                "\n\ndef run_master_assignment(phase, extra):\n"
                "    phase.comm.send(0, 1, None, tag='rogue-sync', nbytes=8)\n"
            )
        assert main(["contracts", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "rogue-sync" in captured.out
        assert captured.err.startswith("FAIL:")

    def test_partition_commsan_flag(self, tmp_path, capsys):
        path = tmp_path / "g.gr"
        write_gr(erdos_renyi(150, 900, seed=3), path)
        assert main([
            "partition", str(path), "-k", "3", "-p", "CVC", "--commsan",
        ]) == 0
        assert "commsan" in capsys.readouterr().out
