"""End-to-end tests of the CuSP framework (paper §IV)."""

import numpy as np
import pytest

from repro.core import CuSP, PHASE_NAMES, make_policy
from repro.graph import (
    CSRGraph,
    erdos_renyi,
    get_dataset,
    paper_figure1_graph,
    star_graph,
    write_gr,
)

ALL_POLICIES = ["EEC", "HVC", "CVC", "FEC", "GVC", "SVC", "CEC", "FVC", "DBH"]


@pytest.fixture(scope="module")
def crawl():
    return get_dataset("clueweb", "tiny")


class TestPartitionCorrectness:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_all_policies_validate(self, policy, crawl):
        dg = CuSP(4, policy, sync_rounds=4).partition(crawl)
        dg.validate(crawl)

    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_host_counts(self, k, crawl):
        dg = CuSP(k, "CVC").partition(crawl)
        dg.validate(crawl)
        assert dg.num_partitions == k

    def test_single_partition_holds_everything(self, crawl):
        dg = CuSP(1, "EEC").partition(crawl)
        p = dg.partitions[0]
        assert p.num_masters == crawl.num_nodes
        assert p.num_mirrors == 0
        assert p.num_edges == crawl.num_edges
        assert dg.replication_factor() == 1.0

    def test_empty_graph(self):
        g = CSRGraph.empty(16)
        dg = CuSP(4, "EEC").partition(g)
        dg.validate(g)
        assert sum(p.num_masters for p in dg.partitions) == 16

    def test_graph_smaller_than_cluster(self):
        g = erdos_renyi(3, 5, seed=1)
        dg = CuSP(8, "HVC").partition(g)
        dg.validate(g)

    def test_self_loops(self):
        g = CSRGraph.from_edges([0, 1, 1], [0, 1, 0], num_nodes=2)
        dg = CuSP(2, "CVC").partition(g)
        dg.validate(g)

    def test_duplicate_edges_preserved(self):
        g = CSRGraph.from_edges([0, 0, 0], [1, 1, 1], num_nodes=2)
        dg = CuSP(2, "EEC").partition(g)
        dg.validate(g)
        assert sum(p.num_edges for p in dg.partitions) == 3

    def test_weighted_graph_carries_weights(self, crawl):
        g = crawl.with_random_weights(seed=3)
        dg = CuSP(4, "CVC").partition(g)
        dg.validate(g)
        rebuilt = dg.to_global_graph()
        assert rebuilt == g

    def test_from_disk(self, tmp_path, crawl):
        path = tmp_path / "g.gr"
        write_gr(crawl, path)
        dg = CuSP(4, "EEC").partition(path)
        dg.validate(crawl)

    def test_deterministic(self, crawl):
        a = CuSP(4, "SVC", sync_rounds=3).partition(crawl)
        b = CuSP(4, "SVC", sync_rounds=3).partition(crawl)
        assert np.array_equal(a.masters, b.masters)
        for pa, pb in zip(a.partitions, b.partitions):
            assert np.array_equal(pa.global_ids, pb.global_ids)
            assert pa.local_graph == pb.local_graph

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            CuSP(0, "EEC")
        with pytest.raises(ValueError):
            CuSP(2, "EEC", sync_rounds=0).partition(CSRGraph.empty(4))
        with pytest.raises(ValueError):
            CuSP(2, "EEC").partition(CSRGraph.empty(4), output="dense")


class TestStructuralInvariants:
    def test_eec_is_outgoing_edge_cut(self, crawl):
        """Source rule: every edge lives where its source is mastered."""
        dg = CuSP(4, "EEC").partition(crawl)
        for p in dg.partitions:
            src, _ = p.global_edges()
            assert np.all(dg.masters[src] == p.host)

    def test_fec_is_outgoing_edge_cut(self, crawl):
        dg = CuSP(4, "FEC", sync_rounds=4).partition(crawl)
        for p in dg.partitions:
            src, _ = p.global_edges()
            assert np.all(dg.masters[src] == p.host)

    def test_cvc_row_column_partners(self, crawl):
        """CVC: a partition only holds edges whose source master is in its
        grid row and destination master in its grid column."""
        from repro.core import grid_shape

        k = 8
        dg = CuSP(k, "CVC").partition(crawl)
        pr, pc = grid_shape(k)
        for p in dg.partitions:
            src, dst = p.global_edges()
            if src.size == 0:
                continue
            row = p.host // pc
            col = p.host % pc
            assert np.all(dg.masters[src] // pc == row)
            assert np.all(dg.masters[dst] % pc == col)

    def test_eec_masters_balanced_by_edges(self, crawl):
        dg = CuSP(4, "EEC").partition(crawl)
        assert dg.edge_balance() < 1.3

    def test_eec_partition_is_locally_read_data(self, crawl):
        """EEC: no edges move between hosts (paper §V-A)."""
        dg = CuSP(4, "EEC").partition(crawl)
        assert dg.breakdown.comm_bytes("Graph Construction") == 0

    def test_hvc_spreads_hub_edges(self):
        """A hub's out-edges land on multiple partitions under Hybrid.

        The leaves need out-edges of their own so ContiguousEB spreads
        their masters across partitions (zero-degree nodes all collapse
        into the final edge block).
        """
        hub_src = np.zeros(400, dtype=np.int64)
        hub_dst = np.arange(1, 401, dtype=np.int64)
        ring_src = np.arange(1, 401, dtype=np.int64)
        ring_dst = np.roll(ring_src, -1)
        g = CSRGraph.from_edges(
            np.concatenate([hub_src, ring_src]),
            np.concatenate([hub_dst, ring_dst]),
            num_nodes=401,
        )
        dg = CuSP(4, make_policy("HVC", degree_threshold=10)).partition(g)
        dg.validate(g)
        hub_edge_hosts = set()
        for p in dg.partitions:
            src, _ = p.global_edges()
            if np.any(src == 0):
                hub_edge_hosts.add(p.host)
        # The hub's own edges fill ~2 of the 4 edge blocks, so leaf
        # masters (and hence hub edges) spread over the remaining 3.
        assert len(hub_edge_hosts) >= 3

    def test_eec_keeps_hub_edges_together(self):
        g = star_graph(400)
        dg = CuSP(4, "EEC").partition(g)
        with_edges = sum(1 for p in dg.partitions if p.num_edges > 0)
        assert with_edges == 1


class TestOutputFormats:
    def test_csc_output_is_transpose(self, crawl):
        dg = CuSP(4, "CVC").partition(crawl, output="csc")
        for p in dg.partitions:
            assert p.local_csc is not None
            assert p.local_csc == p.local_graph.transpose()

    def test_csr_output_has_no_csc(self, crawl):
        dg = CuSP(4, "CVC").partition(crawl)
        assert all(p.local_csc is None for p in dg.partitions)

    def test_csc_input_partitions_transpose(self, crawl):
        """Reading CSC streams incoming edges: the partitioned edge set is
        the transpose of the original (paper §III-B)."""
        dg = CuSP(4, make_policy("HVC", input_format="csc")).partition(crawl)
        dg.validate(crawl.transpose())

    def test_csc_input_same_node_count(self, crawl):
        dg = CuSP(4, make_policy("EEC", input_format="csc")).partition(crawl)
        assert dg.num_global_nodes == crawl.num_nodes


class TestTimingBreakdown:
    def test_all_phases_present(self, crawl):
        dg = CuSP(4, "CVC").partition(crawl)
        assert [p.name for p in dg.breakdown.phases] == PHASE_NAMES

    def test_total_positive(self, crawl):
        assert CuSP(4, "CVC").partition(crawl).breakdown.total > 0

    def test_fennel_master_phase_dominates(self, crawl):
        """FennelEB's master assignment is the bottleneck (Figure 4)."""
        dg = CuSP(4, "SVC", sync_rounds=10).partition(crawl)
        by = dg.breakdown.by_phase()
        assert by["Master Assignment"] > by["Edge Assignment"]

    def test_pure_master_phase_is_cheap(self, crawl):
        dg = CuSP(4, "CVC").partition(crawl)
        ma = dg.breakdown.phase("Master Assignment")
        assert ma.comm_bytes == 0  # replicated computation, no messages

    def test_more_sync_rounds_more_collectives(self, crawl):
        t1 = CuSP(4, "SVC", sync_rounds=1).partition(crawl)
        t50 = CuSP(4, "SVC", sync_rounds=50).partition(crawl)
        c1 = t1.breakdown.phase("Master Assignment").collective
        c50 = t50.breakdown.phase("Master Assignment").collective
        assert c50 > c1

    def test_buffer_size_changes_message_count(self, crawl):
        big = CuSP(4, "CVC", buffer_size=8 << 20).partition(crawl)
        none = CuSP(4, "CVC", buffer_size=0).partition(crawl)
        mb = big.breakdown.phase("Graph Construction").comm_messages
        mn = none.breakdown.phase("Graph Construction").comm_messages
        assert mn > mb

    def test_hvc_sends_more_than_cvc(self):
        """Table V: HVC communicates more data than CVC."""
        g = get_dataset("uk", "tiny")
        k = 8
        hvc = CuSP(k, make_policy("HVC", degree_threshold=30)).partition(g)
        cvc = CuSP(k, "CVC").partition(g)
        hvc_bytes = hvc.breakdown.comm_bytes("Graph Construction")
        cvc_bytes = cvc.breakdown.comm_bytes("Graph Construction")
        assert hvc_bytes > cvc_bytes


class TestPaperFigure1:
    def test_eec_partitions_follow_figure(self):
        """EEC on the Figure 1 graph: contiguous edge-balanced blocks."""
        g = paper_figure1_graph()
        dg = CuSP(4, "EEC").partition(g)
        dg.validate(g)
        # 10 edges over 4 hosts: every host gets 2-3 edges.
        counts = sorted(p.num_edges for p in dg.partitions)
        assert sum(counts) == 10
        assert counts[-1] <= 3

    def test_cvc_partitions_validate(self):
        g = paper_figure1_graph()
        dg = CuSP(4, "CVC").partition(g)
        dg.validate(g)
