"""Property-based tests: distributed analytics equal references on
arbitrary graphs, policies, and host counts."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analytics import (
    BFS,
    ConnectedComponents,
    Engine,
    INF,
    SSSP,
    bfs_reference,
    cc_reference,
    sssp_reference,
)
from repro.core import CuSP
from repro.graph import CSRGraph


@st.composite
def graphs(draw, max_nodes=30, max_edges=90):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return CSRGraph.from_edges(
        np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64), num_nodes=n
    )


POLICY = st.sampled_from(["EEC", "HVC", "CVC", "DBH"])
HOSTS = st.integers(min_value=1, max_value=5)


@settings(max_examples=30, deadline=None)
@given(graphs(), HOSTS, POLICY, st.data())
def test_bfs_matches_reference(graph, k, policy, data):
    source = data.draw(st.integers(0, graph.num_nodes - 1))
    dg = CuSP(k, policy).partition(graph)
    res = Engine(dg).run(BFS(source))
    assert np.array_equal(res.values, bfs_reference(graph, source))


@settings(max_examples=25, deadline=None)
@given(graphs(), HOSTS, POLICY)
def test_cc_matches_reference(graph, k, policy):
    sym = graph.symmetrize()
    dg = CuSP(k, policy).partition(sym)
    res = Engine(dg).run(ConnectedComponents())
    assert np.array_equal(res.values, cc_reference(sym))


@settings(max_examples=20, deadline=None)
@given(graphs(max_edges=60), HOSTS, st.data())
def test_sssp_matches_dijkstra(graph, k, data):
    weighted = graph.with_random_weights(seed=5)
    source = data.draw(st.integers(0, graph.num_nodes - 1))
    dg = CuSP(k, "CVC").partition(weighted)
    res = Engine(dg).run(SSSP(source))
    assert np.array_equal(res.values, sssp_reference(weighted, source))


@settings(max_examples=30, deadline=None)
@given(graphs(), st.data())
def test_bfs_triangle_inequality(graph, data):
    """dist[d] <= dist[s] + 1 for every edge (s, d) — a BFS invariant."""
    source = data.draw(st.integers(0, graph.num_nodes - 1))
    dg = CuSP(3, "EEC").partition(graph)
    dist = Engine(dg).run(BFS(source)).values
    src, dst = graph.edges()
    reachable = dist[src] < INF
    assert np.all(dist[dst[reachable]] <= dist[src[reachable]] + 1)


@settings(max_examples=25, deadline=None)
@given(graphs(), HOSTS)
def test_cc_labels_are_component_minima(graph, k):
    sym = graph.symmetrize()
    dg = CuSP(k, "HVC").partition(sym)
    labels = Engine(dg).run(ConnectedComponents()).values
    src, dst = sym.edges()
    # Endpoints of every edge share a label; each label is a member of
    # its own component and is minimal there.
    assert np.all(labels[src] == labels[dst])
    assert np.all(labels <= np.arange(sym.num_nodes))
    assert np.all(labels[labels] == labels)
