"""Property tests: partition I/O round-trips, window partitioner, and
baselines over arbitrary graphs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import MultilevelPartitioner, XtraPulp
from repro.core import CuSP, WindowedPartitioner, load_partitions, save_partitions

from tests.strategies import graphs


@settings(max_examples=15, deadline=None)
@given(g=graphs(weighted=True), k=st.integers(1, 4),
       policy=st.sampled_from(["EEC", "CVC", "HVC"]))
def test_partition_io_roundtrip(g, k, policy, tmp_path_factory):
    dg = CuSP(k, policy).partition(g)
    root = tmp_path_factory.mktemp("io")
    save_partitions(dg, root)
    loaded = load_partitions(root)
    loaded.validate(g)
    assert np.array_equal(loaded.masters, dg.masters)
    for a, b in zip(dg.partitions, loaded.partitions):
        assert a.local_graph == b.local_graph
        assert np.array_equal(a.global_ids, b.global_ids)


@settings(max_examples=20, deadline=None)
@given(g=graphs(max_nodes=25, max_edges=80), k=st.integers(1, 4),
       window=st.integers(1, 16), shuffle=st.booleans())
def test_window_partitioner_preserves_graph(g, k, window, shuffle):
    dg = WindowedPartitioner(
        k, window_size=window, shuffle_stream=shuffle
    ).partition(g)
    dg.validate(g)


@settings(max_examples=15, deadline=None)
@given(g=graphs(max_nodes=30, max_edges=90), k=st.integers(1, 4))
def test_xtrapulp_preserves_graph(g, k):
    dg = XtraPulp(k, outer_iters=1).partition(g)
    dg.validate(g)


@settings(max_examples=15, deadline=None)
@given(g=graphs(max_nodes=30, max_edges=90), k=st.integers(1, 4))
def test_multilevel_preserves_graph(g, k):
    dg = MultilevelPartitioner(k).partition(g)
    dg.validate(g)


@settings(max_examples=15, deadline=None)
@given(g=graphs(max_nodes=25, max_edges=60), k=st.integers(1, 4),
       policy=st.sampled_from(["PGC", "HDRF"]))
def test_streaming_vertex_cuts_preserve_graph(g, k, policy):
    dg = CuSP(k, policy).partition(g)
    dg.validate(g)


@settings(max_examples=15, deadline=None)
@given(g=graphs(max_nodes=30, max_edges=90), k=st.integers(1, 5),
       policy=st.sampled_from(["BVC", "JVC", "LEC"]))
def test_table1_policies_preserve_graph(g, k, policy):
    dg = CuSP(k, policy, sync_rounds=2).partition(g)
    dg.validate(g)
