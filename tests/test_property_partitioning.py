"""Property-based tests: partitioning invariants over arbitrary graphs.

For any graph, any policy, and any host count, CuSP must produce a
partition where (paper §II): every edge is owned by exactly one host,
every vertex has exactly one master, mirrors are never local masters, and
the union of the subgraphs is the input graph.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CuSP, make_policy, policy_names
from repro.graph import CSRGraph


@st.composite
def graphs(draw, max_nodes=40, max_edges=120):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    if m:
        src = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=m, max_size=m,
            )
        )
        dst = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=m, max_size=m,
            )
        )
    else:
        src, dst = [], []
    return CSRGraph.from_edges(
        np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64), num_nodes=n
    )


@settings(max_examples=40, deadline=None)
@given(graph=graphs(), k=st.integers(min_value=1, max_value=6),
       policy=st.sampled_from(["EEC", "HVC", "CVC", "CEC", "DBH"]))
def test_stateless_policies_preserve_graph(graph, k, policy):
    dg = CuSP(k, make_policy(policy, degree_threshold=3)).partition(graph)
    dg.validate(graph)


@settings(max_examples=20, deadline=None)
@given(graph=graphs(max_nodes=25, max_edges=60),
       k=st.integers(min_value=1, max_value=4),
       rounds=st.integers(min_value=1, max_value=5),
       policy=st.sampled_from(["FEC", "GVC", "SVC", "FVC"]))
def test_stateful_policies_preserve_graph(graph, k, rounds, policy):
    dg = CuSP(k, make_policy(policy, degree_threshold=3),
              sync_rounds=rounds).partition(graph)
    dg.validate(graph)


@settings(max_examples=25, deadline=None)
@given(graph=graphs(), k=st.integers(min_value=1, max_value=6))
def test_replication_factor_bounds(graph, k):
    """1 <= replication factor <= k for any partitioning."""
    dg = CuSP(k, "CVC").partition(graph)
    rep = dg.replication_factor()
    assert 1.0 <= rep <= k + 1e-9


@settings(max_examples=25, deadline=None)
@given(graph=graphs(), k=st.integers(min_value=1, max_value=5))
def test_edge_cut_invariant_holds_for_source_rule(graph, k):
    """Source-rule partitions co-locate every edge with its source master."""
    dg = CuSP(k, "EEC").partition(graph)
    for p in dg.partitions:
        src, _ = p.global_edges()
        assert np.all(dg.masters[src] == p.host)


@settings(max_examples=25, deadline=None)
@given(graph=graphs(max_nodes=30, max_edges=80),
       k=st.integers(min_value=1, max_value=5))
def test_determinism(graph, k):
    a = CuSP(k, "SVC", sync_rounds=2).partition(graph)
    b = CuSP(k, "SVC", sync_rounds=2).partition(graph)
    assert np.array_equal(a.masters, b.masters)
    for pa, pb in zip(a.partitions, b.partitions):
        assert pa.local_graph == pb.local_graph


@settings(max_examples=25, deadline=None)
@given(graph=graphs(), k=st.integers(min_value=1, max_value=6))
def test_csc_output_transposes_locally(graph, k):
    dg = CuSP(k, "HVC").partition(graph, output="csc")
    for p in dg.partitions:
        assert p.local_csc == p.local_graph.transpose()


@settings(max_examples=30, deadline=None)
@given(graph=graphs())
def test_single_host_partition_is_whole_graph(graph):
    dg = CuSP(1, "EEC").partition(graph)
    assert dg.partitions[0].num_edges == graph.num_edges
    assert dg.replication_factor() == 1.0
