"""The columnar message fabric (``repro.runtime.colfab``).

Two layers of coverage.  Unit: schemas, batches, receiver views and the
sender-side :class:`BatchAccumulator`, including the accounting contract
— every flushed block is exactly one transport send, and merging staged
appends is only legal where the stream formula makes the merged charge
equal the sum of per-append charges.  End-to-end: the ``fabric=`` knob,
where the columnar pipeline must produce bit-identical partitions *and*
bit-identical simulated breakdowns to the scalar compatibility path on
every policy, on every executor, under CommSan, and under injected
faults — the columnar path is a vectorization, never a different cost
model.

Also here: the ``recv_all`` queue-semantics tests (tag isolation, FIFO
across ledger merges, ``pending`` with mixed direct/ledger sends) that
the batch receiver builds on.
"""

import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CuSP
from repro.graph import erdos_renyi
from repro.runtime.colfab import (
    WIRE_MAGIC,
    BatchAccumulator,
    ColumnSchema,
    MessageBatch,
    ReceivedBatch,
    leaked_segments,
    resolve_fabric,
)
from repro.runtime.colfab import concat_batches
from repro.runtime.comm import Communicator
from repro.runtime.faults import FaultPlan, HostCrash

from .test_executors import assert_same_breakdown, assert_same_partition

I64 = np.dtype(np.int64)
I32 = np.dtype(np.int32)


def ids_batch(schema, *cols, scalars=()):
    return MessageBatch(
        schema, tuple(np.asarray(c, dtype=dt) for c, (_, dt) in
                      zip(cols, schema.columns)),
        scalars,
    )


class TestColumnSchema:
    def test_value_equality_and_hash(self):
        a = ColumnSchema((("ids", I64), ("masters", I32)), scalars=("count",))
        b = ColumnSchema((("ids", np.int64), ("masters", np.int32)),
                         scalars=("count",))
        assert a == b and hash(a) == hash(b)
        assert a != ColumnSchema((("ids", I64),))
        assert a != ColumnSchema((("ids", I64), ("masters", I32)))

    def test_row_nbytes_is_sum_of_itemsizes(self):
        s = ColumnSchema((("a", I64), ("b", I32), ("c", np.float64)))
        assert s.row_nbytes == 8 + 4 + 8

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ColumnSchema((("x", I64), ("x", I32)))
        with pytest.raises(ValueError):
            ColumnSchema((("x", I64),), scalars=("n", "n"))

    def test_immutable(self):
        s = ColumnSchema((("x", I64),))
        with pytest.raises(AttributeError):
            s.row_nbytes = 0


class TestMessageBatch:
    SCHEMA = ColumnSchema((("src", I64), ("dst", I64)))

    def test_nbytes_is_exact_and_o1(self):
        b = ids_batch(self.SCHEMA, [1, 2, 3], [4, 5, 6])
        assert b.nbytes == b.columns[0].nbytes + b.columns[1].nbytes == 48
        s = ColumnSchema((("x", I64),), scalars=("count",))
        assert MessageBatch(s, (np.arange(2),), (7,)).nbytes == 16 + 8

    def test_validation(self):
        with pytest.raises(ValueError):
            MessageBatch(self.SCHEMA, (np.arange(3),))  # missing column
        with pytest.raises(TypeError):
            MessageBatch(self.SCHEMA,
                         (np.arange(3, dtype=np.int32), np.arange(3)))
        with pytest.raises(ValueError):
            MessageBatch(self.SCHEMA, (np.arange(3), np.arange(4)))
        with pytest.raises(ValueError):
            MessageBatch(self.SCHEMA,
                         (np.zeros((2, 2), dtype=I64), np.arange(4)))
        with pytest.raises(ValueError):  # scalar count mismatch
            MessageBatch(ColumnSchema((), scalars=("n",)), (), ())

    def test_empty_zero_fills_scalars(self):
        s = ColumnSchema((("x", I64),), scalars=("count",))
        b = MessageBatch.empty(s)
        assert b.rows == 0 and b.scalars == (0,)
        assert b.nbytes == 8  # the scalar still travels

    def test_slice_is_zero_copy(self):
        b = ids_batch(self.SCHEMA, np.arange(10), np.arange(10))
        view = b.slice(2, 7)
        assert view.rows == 5
        assert np.shares_memory(view.columns[0], b.columns[0])

    def test_column_accessor(self):
        b = ids_batch(self.SCHEMA, [1], [9])
        assert b.column("dst")[0] == 9


_WIRE_SIGNED = (np.dtype(np.int64), np.dtype(np.int32), np.dtype(np.int16),
                np.dtype(np.float64), np.dtype(np.float32))
_WIRE_UNSIGNED = (np.dtype(np.uint8), np.dtype(np.uint16))


@st.composite
def wire_batches(draw):
    """Arbitrary MessageBatch: mixed dtypes, scalars, any row count."""
    ncols = draw(st.integers(0, 4))
    nscalars = draw(st.integers(0, 3))
    rows = draw(st.integers(0, 40))
    dts = [
        draw(st.sampled_from(_WIRE_SIGNED + _WIRE_UNSIGNED))
        for _ in range(ncols)
    ]
    cols = []
    for dt in dts:
        lo = -120 if dt in _WIRE_SIGNED else 0
        vals = draw(st.lists(
            st.integers(lo, 120), min_size=rows, max_size=rows,
        ))
        cols.append(np.asarray(vals, dtype=dt))
    scalars = tuple(
        draw(st.one_of(
            st.integers(-(2 ** 62), 2 ** 62),
            st.floats(allow_nan=False, allow_infinity=False, width=64),
        ))
        for _ in range(nscalars)
    )
    schema = ColumnSchema(
        tuple((f"c{i}", dt) for i, dt in enumerate(dts)),
        scalars=tuple(f"s{i}" for i in range(nscalars)),
    )
    return MessageBatch(schema, tuple(cols), scalars)


def assert_batches_equal(a, b):
    assert a.schema == b.schema
    assert a.rows == b.rows
    assert a.nbytes == b.nbytes
    assert a.checksum() == b.checksum()
    for ca, cb in zip(a.columns, b.columns):
        assert ca.dtype == cb.dtype
        assert np.array_equal(ca, cb)
    assert a.scalars == b.scalars
    for sa, sb in zip(a.scalars, b.scalars):
        assert type(sa) is type(sb)  # int stays int, float stays float


class TestWireFormat:
    """The versioned zero-copy wire format (`to_bytes`/`from_bytes`)."""

    SCHEMA = ColumnSchema((("src", I64), ("dst", I32)), scalars=("count",))

    @settings(max_examples=120, deadline=None)
    @given(batch=wire_batches())
    def test_round_trip(self, batch):
        back = MessageBatch.from_bytes(batch.to_bytes())
        assert_batches_equal(batch, back)

    @settings(max_examples=60, deadline=None)
    @given(batch=wire_batches())
    def test_pickle_round_trips_via_wire(self, batch):
        back = pickle.loads(pickle.dumps(batch, pickle.HIGHEST_PROTOCOL))
        assert_batches_equal(batch, back)

    @settings(max_examples=60, deadline=None)
    @given(batch=wire_batches(), data=st.data())
    def test_sliced_batch_round_trips(self, batch, data):
        lo = data.draw(st.integers(0, batch.rows))
        hi = data.draw(st.integers(lo, batch.rows))
        view = batch.slice(lo, hi)
        back = MessageBatch.from_bytes(view.to_bytes())
        assert_batches_equal(view, back)

    def test_empty_batch_round_trips(self):
        batch = MessageBatch.empty(self.SCHEMA)
        back = MessageBatch.from_bytes(batch.to_bytes())
        assert_batches_equal(batch, back)

    def test_wire_magic_leads_the_frame(self):
        buf = ids_batch(self.SCHEMA, [1], [2], scalars=(3,)).to_bytes()
        assert buf[: len(WIRE_MAGIC)] == WIRE_MAGIC

    def test_corrupted_payload_is_rejected(self):
        buf = bytearray(
            ids_batch(self.SCHEMA, [1, 2], [3, 4], scalars=(5,)).to_bytes()
        )
        buf[-1] ^= 0xFF  # flip a bit in the last column's data
        with pytest.raises(ValueError):
            MessageBatch.from_bytes(bytes(buf))

    def test_truncated_frame_is_rejected(self):
        buf = ids_batch(self.SCHEMA, [1, 2], [3, 4], scalars=(5,)).to_bytes()
        with pytest.raises(ValueError):
            MessageBatch.from_bytes(buf[: len(buf) // 2])

    def test_bool_scalar_is_rejected(self):
        s = ColumnSchema((("x", I64),), scalars=("flag",))
        batch = MessageBatch(s, (np.arange(2),), (True,))
        with pytest.raises(TypeError):
            batch.to_bytes()

    def test_shared_memory_columns_round_trip(self):
        src = np.arange(4096, dtype=np.int64)
        dst = np.arange(4096, dtype=np.int32)
        batch = MessageBatch(self.SCHEMA, (src, dst), (7,))
        buf = batch.to_bytes(shm_threshold=1024)
        assert len(buf) < batch.nbytes  # columns live in shm, not inline
        back = MessageBatch.from_bytes(buf)
        assert_batches_equal(batch, back)
        back.detach_shared()  # copy private + unlink the segments
        assert_batches_equal(batch, back)

    def test_decode_is_zero_copy_for_inline_columns(self):
        batch = ids_batch(self.SCHEMA, [1, 2, 3], [4, 5, 6], scalars=(9,))
        buf = batch.to_bytes()
        back = MessageBatch.from_bytes(buf)
        assert not back.columns[0].flags.owndata  # view over the frame


class TestWireShmAbnormalExit:
    """Shared-memory column lifecycle when a worker exits abnormally.

    The process executor's crash sweeper unlinks whatever a dead worker
    left behind; these tests pin the contracts that make that safe:
    every segment is unlinked exactly once (a second release is a
    no-op, a sweeper-raced release swallows ``FileNotFoundError``
    without re-poking the resource tracker), a receiver attaching a
    swept name gets a diagnosable ``ValueError`` instead of a raw
    ``FileNotFoundError``, and a forked child inheriting a batch never
    unlinks segments its parent still serves.
    """

    SCHEMA = ColumnSchema((("src", I64), ("dst", I32)), scalars=("count",))

    def _shm_batch(self, rows=4096):
        src = np.arange(rows, dtype=np.int64)
        dst = np.arange(rows, dtype=np.int32)
        return MessageBatch(self.SCHEMA, (src, dst), (rows,))

    def test_swept_segment_gives_clean_recv_error(self):
        # Decoding the same wire blob twice models a receiver attaching
        # a name the crash sweeper (or the first decoder) already
        # unlinked: the second attach must fail with a diagnosable
        # ValueError, not a raw FileNotFoundError.
        buf = self._shm_batch().to_bytes(shm_threshold=1024)
        first = MessageBatch.from_bytes(buf)
        first.detach_shared()
        with pytest.raises(ValueError, match="is gone"):
            MessageBatch.from_bytes(buf)
        assert leaked_segments() == []

    def test_release_unlinks_exactly_once_and_keeps_views_valid(self):
        batch = self._shm_batch()
        buf = batch.to_bytes(shm_threshold=1024)
        back = MessageBatch.from_bytes(buf)
        assert leaked_segments() != []  # decoder now owns live segments
        view = back.column("src")
        back.release_shared()
        assert leaked_segments() == []
        # The mapping outlives the unlink; only the /dev/shm name died.
        assert np.array_equal(view, batch.column("src"))
        # Second release (and the GC finalizer) must be a no-op.
        back.release_shared()
        del back
        assert leaked_segments() == []

    def test_release_after_external_sweep_does_not_double_unlink(self):
        from multiprocessing import shared_memory

        buf = self._shm_batch().to_bytes(shm_threshold=1024)
        back = MessageBatch.from_bytes(buf)
        names = list(leaked_segments())
        assert names
        # Simulate the crash sweeper getting there first: unlink the
        # names out from under the owning batch.
        for name in names:
            seg = shared_memory.SharedMemory(name=name)
            seg.close()
            seg.unlink()
        # The owner's release must tolerate the already-swept names
        # (exactly-once unlink: no FileNotFoundError, and no second
        # resource-tracker unregister for the tracker daemon to choke
        # on) and still leave zero leaks.
        back.release_shared()
        assert leaked_segments() == []

    def test_borrowed_segments_survive_decoder_death(self):
        encoder = self._shm_batch()
        buf = encoder.to_bytes(shm_threshold=1024, borrow=True)
        # Borrow mode: the encoder keeps the unlink obligation...
        assert encoder._shm and encoder._shm_owner == os.getpid()
        back = MessageBatch.from_bytes(buf)
        # ...so the decoder owns nothing and its death (or never
        # decoding at all) cannot unlink or leak anything.
        assert back._shm == ()
        view = back.column("dst")
        del back
        assert leaked_segments() != []  # encoder's segments still live
        # Re-shipping the same batch references the segments by name —
        # still exactly one owner, no new segments.
        again = MessageBatch.from_bytes(
            encoder.to_bytes(shm_threshold=1024, borrow=True)
        )
        assert_batches_equal(encoder, again)
        names_before = leaked_segments()
        encoder.release_shared()
        assert leaked_segments() == []
        assert names_before  # the release above was the single unlink
        assert np.array_equal(view, np.arange(4096, dtype=np.int32))

    def test_forked_child_never_unlinks_parent_segments(self):
        buf = self._shm_batch().to_bytes(shm_threshold=1024)
        back = MessageBatch.from_bytes(buf)
        assert leaked_segments() != []
        pid = os.fork()
        if pid == 0:  # pragma: no cover - asserted via the parent
            # Child: abnormal exit path — the inherited batch's release
            # (explicit or via GC at interpreter teardown) must be a
            # no-op because the recorded owner pid is the parent's.
            back.release_shared()
            os._exit(0 if leaked_segments() else 1)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        assert leaked_segments() != []  # parent's segments untouched
        back.release_shared()
        assert leaked_segments() == []


class TestConcatBatches:
    SCHEMA = ColumnSchema((("x", I64),))

    def test_preserves_order(self):
        parts = [ids_batch(self.SCHEMA, [1, 2]), ids_batch(self.SCHEMA, [3])]
        merged = concat_batches(self.SCHEMA, parts)
        assert merged.columns[0].tolist() == [1, 2, 3]

    def test_rejects_scalar_schemas_and_mismatch(self):
        with pytest.raises(ValueError):
            concat_batches(ColumnSchema((), scalars=("n",)), [])
        other = ids_batch(ColumnSchema((("y", I64),)), [1])
        with pytest.raises(TypeError):
            concat_batches(self.SCHEMA, [other])


class TestReceivedBatch:
    SCHEMA = ColumnSchema((("x", I64),), scalars=("count",))

    def test_fifo_concatenation_and_block_metadata(self):
        blocks = [
            (2, ids_batch(self.SCHEMA, [1, 2], scalars=(2,))),
            (0, ids_batch(self.SCHEMA, [3], scalars=(1,))),
            (2, ids_batch(self.SCHEMA, [], scalars=(0,))),
        ]
        rb = ReceivedBatch(self.SCHEMA, blocks)
        assert rb.columns["x"].tolist() == [1, 2, 3]
        assert rb.srcs.tolist() == [2, 0, 2]
        assert rb.lengths.tolist() == [2, 1, 0]
        assert rb.scalars["count"].tolist() == [2, 1, 0]
        assert rb.src_column.tolist() == [2, 2, 0]
        assert rb.num_blocks == 3 and rb.rows == 3

    def test_empty_queue(self):
        rb = ReceivedBatch(self.SCHEMA, [])
        assert rb.rows == 0 and rb.num_blocks == 0
        assert rb.columns["x"].dtype == I64

    def test_rejects_scalar_payloads_and_schema_mismatch(self):
        with pytest.raises(TypeError):
            ReceivedBatch(self.SCHEMA, [(0, np.arange(3))])
        other = ids_batch(ColumnSchema((("y", I64),)), [1])
        with pytest.raises(TypeError):
            ReceivedBatch(self.SCHEMA, [(0, other)])


class TestBatchAccumulator:
    SCHEMA = ColumnSchema((("x", I64),))

    def test_single_staged_block_is_bit_identical_to_a_scalar_send(self):
        """One append + flush charges exactly like the send it replaces."""
        batch_comm = Communicator(4, buffer_size=64)
        scalar_comm = Communicator(4, buffer_size=64)
        payload = np.arange(100, dtype=np.int64)
        acc = batch_comm.accumulator(0)
        acc.append(1, ids_batch(self.SCHEMA, payload), tag="t",
                   logical_messages=5, nbytes=320)
        acc.flush_all()
        scalar_comm.send(0, 1, payload, tag="t", logical_messages=5,
                         nbytes=320)
        assert np.array_equal(batch_comm.sent_bytes, scalar_comm.sent_bytes)
        assert np.array_equal(batch_comm.sent_messages,
                              scalar_comm.sent_messages)
        assert batch_comm.pending(1, "t") == scalar_comm.pending(1, "t") == 1

    def test_merging_appends_requires_coalesce(self):
        acc = Communicator(4).accumulator(0)
        acc.append(1, ids_batch(self.SCHEMA, [1]), tag="t")
        with pytest.raises(ValueError):
            acc.append(1, ids_batch(self.SCHEMA, [2]), tag="t")
        # A different channel is fine.
        acc.append(2, ids_batch(self.SCHEMA, [2]), tag="t")
        acc.append(1, ids_batch(self.SCHEMA, [3]), tag="u")

    def test_coalesced_merge_charge_equals_sum_of_per_append_charges(self):
        batch_comm = Communicator(4, buffer_size=64)
        scalar_comm = Communicator(4, buffer_size=64)
        a = np.arange(5, dtype=np.int64)
        b = np.arange(7, dtype=np.int64)
        acc = batch_comm.accumulator(0)
        acc.append(1, ids_batch(self.SCHEMA, a), tag="t", coalesce=True)
        acc.append(1, ids_batch(self.SCHEMA, b), tag="t", coalesce=True)
        acc.flush_all()
        scalar_comm.send(0, 1, a, tag="t", coalesce=True)
        scalar_comm.send(0, 1, b, tag="t", coalesce=True)
        assert np.array_equal(batch_comm.sent_bytes, scalar_comm.sent_bytes)
        assert np.array_equal(batch_comm._stream_bytes,
                              scalar_comm._stream_bytes)
        assert np.array_equal(batch_comm._stream_logical,
                              scalar_comm._stream_logical)
        # The merged rows arrive as one contiguous block, in append order.
        rb = batch_comm.recv_all_batch(1, "t", self.SCHEMA)
        assert rb.num_blocks == 1
        assert rb.columns["x"].tolist() == a.tolist() + b.tolist()

    def test_coalesced_merge_rejects_schema_drift(self):
        acc = Communicator(4).accumulator(0)
        acc.append(1, ids_batch(self.SCHEMA, [1]), tag="t", coalesce=True)
        other = ColumnSchema((("y", I64),))
        with pytest.raises(TypeError):
            acc.append(1, ids_batch(other, [2]), tag="t", coalesce=True)

    def test_flush_order_is_first_append_order(self):
        comm = Communicator(4, buffer_size=0)
        sent = []
        orig = comm.send_batch

        def spy(src, dst, batch, **kw):
            sent.append((dst, kw["tag"]))
            return orig(src, dst, batch, **kw)

        comm.send_batch = spy
        acc = comm.accumulator(0)
        for dst, tag in [(3, "a"), (1, "b"), (2, "a")]:
            acc.append(dst, ids_batch(self.SCHEMA, [dst]), tag=tag)
        assert acc.staged_rows(3, "a") == 1
        assert list(acc.channels()) == [(3, "a"), (1, "b"), (2, "a")]
        acc.flush_all()
        assert sent == [(3, "a"), (1, "b"), (2, "a")]
        assert acc.staged_rows(3, "a") == 0
        acc.flush(3, "a")  # flushing an empty channel is a no-op
        assert sent == [(3, "a"), (1, "b"), (2, "a")]

    def test_append_rejects_non_batches(self):
        acc = Communicator(2).accumulator(0)
        with pytest.raises(TypeError):
            acc.append(1, np.arange(3), tag="t")

    def test_ledger_accumulator_stays_private_until_merge(self):
        comm = Communicator(3, buffer_size=0)
        ledger = comm.ledger(0)
        acc = ledger.accumulator()
        acc.append(1, ids_batch(self.SCHEMA, [1, 2]), tag="t")
        acc.flush_all()
        assert comm.pending(1, "t") == 0  # buffered on the ledger
        assert ledger.sent_bytes[1] == 16
        comm.merge_ledger(ledger)
        assert comm.pending(1, "t") == 1
        assert comm.sent_bytes[0, 1] == 16


class TestCommBatchPath:
    SCHEMA = ColumnSchema((("x", I64),))

    def test_send_batch_accounts_exactly_like_send(self):
        batch_comm = Communicator(3, buffer_size=10)
        scalar_comm = Communicator(3, buffer_size=10)
        payload = np.arange(9, dtype=np.int64)  # 72 bytes -> ceil = 8 msgs
        batch_comm.send_batch(0, 1, ids_batch(self.SCHEMA, payload), tag="t")
        scalar_comm.send(0, 1, payload, tag="t")
        assert np.array_equal(batch_comm.sent_bytes, scalar_comm.sent_bytes)
        assert np.array_equal(batch_comm.sent_messages,
                              scalar_comm.sent_messages)

    def test_send_batch_rejects_raw_payloads(self):
        comm = Communicator(2)
        with pytest.raises(TypeError):
            comm.send_batch(0, 1, np.arange(3), tag="t")

    def test_recv_all_batch_matches_recv_all_concatenation(self):
        comm = Communicator(3, buffer_size=0)
        shadow = Communicator(3, buffer_size=0)
        rng = np.random.default_rng(7)
        for src, rows in [(0, 3), (2, 5), (0, 0), (1, 4)]:
            col = rng.integers(0, 100, size=rows)
            comm.send_batch(src, 1, ids_batch(self.SCHEMA, col), tag="t")
            shadow.send(src, 1, (np.asarray(col, dtype=np.int64),), tag="t")
        rb = comm.recv_all_batch(1, "t", self.SCHEMA)
        manual = np.concatenate(
            [p[0] for _, p in shadow.recv_all(1, "t")]
        )
        assert np.array_equal(rb.columns["x"], manual)
        assert comm.pending(1, "t") == 0  # drained

    def test_recv_all_batch_rejects_mixed_scalar_traffic(self):
        comm = Communicator(2, buffer_size=0)
        comm.send(0, 1, np.arange(3), tag="t")
        with pytest.raises(TypeError):
            comm.recv_all_batch(1, "t", self.SCHEMA)


class TestRecvAllSemantics:
    """Queue semantics the batch receiver is built on (satellite)."""

    def test_tag_isolation(self):
        comm = Communicator(2, buffer_size=0)
        comm.send(0, 1, "a1", tag="alpha")
        comm.send(0, 1, "b1", tag="beta")
        comm.send(0, 1, "a2", tag="alpha")
        assert [p for _, p in comm.recv_all(1, "alpha")] == ["a1", "a2"]
        assert comm.pending(1, "alpha") == 0
        assert comm.pending(1, "beta") == 1  # untouched by the other drain
        assert [p for _, p in comm.recv_all(1, "beta")] == ["b1"]

    def test_fifo_order_across_merge_ledger_in_host_order(self):
        """Merging ledgers host-by-host reproduces the serial queue order:
        grouped by source host, send order preserved within a host."""
        comm = Communicator(4, buffer_size=0)
        ledgers = [comm.ledger(h) for h in range(3)]
        for h, ledger in enumerate(ledgers):
            for i in range(2):
                ledger.send(3, f"h{h}m{i}", tag="t")
        for ledger in ledgers:  # host order, as at the phase barrier
            comm.merge_ledger(ledger)
        received = comm.recv_all(3, "t")
        assert [src for src, _ in received] == [0, 0, 1, 1, 2, 2]
        assert [p for _, p in received] == [
            "h0m0", "h0m1", "h1m0", "h1m1", "h2m0", "h2m1",
        ]

    def test_pending_counts_mixed_direct_and_ledger_sends(self):
        comm = Communicator(3, buffer_size=0)
        comm.send(0, 2, "direct", tag="t")
        assert comm.pending(2, "t") == 1
        ledger = comm.ledger(1)
        ledger.send(2, "buffered", tag="t")
        # The ledger buffers: nothing lands on the shared queue until merge.
        assert comm.pending(2, "t") == 1
        comm.merge_ledger(ledger)
        assert comm.pending(2, "t") == 2
        assert [p for _, p in comm.recv_all(2, "t")] == ["direct", "buffered"]
        assert comm.pending(2, "t") == 0


class TestResolveFabric:
    def test_default_and_validation(self):
        assert resolve_fabric(None) == "columnar"
        assert resolve_fabric("scalar") == "scalar"
        with pytest.raises(ValueError):
            resolve_fabric("vectorized")

    def test_cusp_rejects_unknown_fabric(self):
        with pytest.raises(ValueError):
            CuSP(4, "CVC", fabric="vectorized")


GRAPH = erdos_renyi(220, 2400, seed=11)


def _weighted_graph(num_nodes=160, num_edges=1600, seed=12):
    from repro.graph import CSRGraph

    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    w = rng.integers(1, 1000, size=num_edges, dtype=np.int64)
    return CSRGraph.from_edges(src, dst, num_nodes=num_nodes, edge_data=w)


WEIGHTED = _weighted_graph()


def run(policy="CVC", graph=GRAPH, output="csr", **kw):
    return CuSP(4, policy, **kw).partition(graph, output=output)


class TestFabricEquivalence:
    """Columnar vs scalar: partitions AND breakdowns bit-identical."""

    @pytest.mark.parametrize(
        "policy",
        ["EEC", "HVC", "CVC", "FEC", "GVC", "SVC", "CEC", "FVC", "DBH",
         "PGC", "HDRF", "BVC", "JVC", "LEC"],
    )
    def test_every_policy_serial(self, policy):
        col = run(policy, fabric="columnar")
        sca = run(policy, fabric="scalar")
        assert_same_partition(col, sca)
        assert_same_breakdown(col.breakdown, sca.breakdown)

    def test_weighted_graph_with_csc_output(self):
        col = run("HVC", graph=WEIGHTED, output="csc", fabric="columnar")
        sca = run("HVC", graph=WEIGHTED, output="csc", fabric="scalar")
        assert_same_partition(col, sca)
        assert_same_breakdown(col.breakdown, sca.breakdown)
        for pc, ps in zip(col.partitions, sca.partitions):
            assert np.array_equal(pc.local_graph.edge_data,
                                  ps.local_graph.edge_data)
            assert np.array_equal(pc.local_csc.indptr, ps.local_csc.indptr)

    @pytest.mark.parametrize(
        "executor",
        ["parallel", "parallel-checked", "process", "process-checked"],
    )
    def test_parallel_executors(self, executor):
        col = run("CVC", fabric="columnar", executor=executor)
        sca = run("CVC", fabric="scalar", executor="serial")
        assert_same_partition(col, sca)
        assert_same_breakdown(col.breakdown, sca.breakdown)

    def test_under_commsan(self):
        col = run("FVC", fabric="columnar", sanitizer=True)
        sca = run("FVC", fabric="scalar", sanitizer=True)
        assert_same_partition(col, sca)
        assert_same_breakdown(col.breakdown, sca.breakdown)

    @pytest.mark.parametrize("executor", ["serial", "parallel", "process"])
    def test_under_injected_faults(self, executor):
        """Same fault plan, same draws: the columnar op sequence matches
        the scalar one operation for operation."""
        plan = FaultPlan(
            seed=2, send_failure_rate=0.05, drop_rate=0.03,
            duplicate_rate=0.03,
            crashes=(HostCrash(host=1, phase=2, op_count=5),
                     HostCrash(host=2, phase=4)),
        )
        col = run("CVC", fabric="columnar", fault_plan=plan,
                  executor=executor)
        sca = run("CVC", fabric="scalar", fault_plan=plan, executor="serial")
        assert_same_partition(col, sca)
        assert_same_breakdown(col.breakdown, sca.breakdown)
        assert col.breakdown.failed_phases()  # the crashes actually fired
