"""Tests for GraphProp and partitioning state."""

import numpy as np
import pytest

from repro.core import GraphProp, PartitionLoadState, VoidState
from repro.graph import CSRGraph
from repro.runtime import Communicator


def graph():
    # 0->1, 0->2, 1->2, 3 isolated
    return CSRGraph.from_edges([0, 0, 1], [1, 2, 2], num_nodes=4)


class TestGraphProp:
    def test_paper_accessors(self):
        p = GraphProp(graph(), 2)
        assert p.getNumNodes() == 4
        assert p.getNumEdges() == 3
        assert p.getNumPartitions() == 2
        assert p.getNodeOutDegree(0) == 2
        assert p.getNodeOutDegree(3) == 0
        assert p.getNodeOutNeighbors(0).tolist() == [1, 2]
        assert p.getNodeOutEdge(0, 0) == 0
        assert p.getNodeOutEdge(0, 1) == 1
        assert p.getNodeOutEdge(1, 0) == 2

    def test_out_edge_of_empty_node(self):
        p = GraphProp(graph(), 2)
        # Well-defined for ContiguousEB: position where edges would start.
        assert p.getNodeOutEdge(3, 0) == 3

    def test_out_edge_index_error(self):
        p = GraphProp(graph(), 2)
        with pytest.raises(IndexError):
            p.getNodeOutEdge(1, 5)

    def test_vectorized_accessors(self):
        p = GraphProp(graph(), 2)
        assert p.out_degrees(np.array([0, 1, 3])).tolist() == [2, 1, 0]
        assert p.first_out_edges(np.array([0, 1, 2, 3])).tolist() == [0, 2, 3, 3]

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            GraphProp(graph(), 0)


class TestVoidState:
    def test_noop(self):
        s = VoidState()
        assert not s.stateful
        comm = Communicator(2)
        s.sync_round(comm)  # no-op
        assert comm.collective_events == []
        s.reset()
        assert s.host_view(0) is s


class TestPartitionLoadState:
    def test_local_updates_invisible_until_sync(self):
        s = PartitionLoadState(num_partitions=3, num_hosts=2)
        v0, v1 = s.host_view(0), s.host_view(1)
        v0.add_node(1)
        assert v0.numNodes.tolist() == [0, 1, 0]  # own update visible
        assert v1.numNodes.tolist() == [0, 0, 0]  # peer does not see it

    def test_sync_round_merges(self):
        s = PartitionLoadState(3, 2)
        s.host_view(0).add_node(1)
        s.host_view(1).add_node(1)
        s.host_view(1).add_edges(2, 10)
        comm = Communicator(2)
        s.sync_round(comm)
        for h in range(2):
            assert s.host_view(h).numNodes.tolist() == [0, 2, 0]
            assert s.host_view(h).numEdges.tolist() == [0, 0, 10]
        # exactly one allreduce + one barrier per round
        assert len(comm.collective_events) == 1
        assert comm.barriers == 1

    def test_reset(self):
        s = PartitionLoadState(2, 1)
        s.host_view(0).add_node(0)
        s.sync_round(Communicator(1))
        s.reset()
        assert s.host_view(0).numNodes.tolist() == [0, 0]

    def test_totals_ignores_sync(self):
        s = PartitionLoadState(2, 2)
        s.host_view(0).add_node(0)
        s.host_view(1).add_node(1)
        nodes, edges = s.totals()
        assert nodes.tolist() == [1, 1]
        assert edges.tolist() == [0, 0]

    def test_invalid_host_view(self):
        s = PartitionLoadState(2, 2)
        with pytest.raises(ValueError):
            s.host_view(5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PartitionLoadState(0, 1)
