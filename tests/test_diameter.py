"""Tests for the double-sweep diameter approximation."""

import numpy as np
import pytest

from repro.analytics import approximate_diameter
from repro.core import CuSP
from repro.graph import (
    CSRGraph,
    cycle_graph,
    get_dataset,
    grid_graph,
    path_graph,
)


class TestDiameter:
    def test_path_exact(self):
        g = path_graph(12).symmetrize()
        dg = CuSP(3, "EEC").partition(g)
        res = approximate_diameter(dg, start=5)
        assert res.lower_bound == 11

    def test_grid_exact(self):
        # Diameter of an m x n grid (undirected) is (m-1) + (n-1).
        g = grid_graph(6, 9).symmetrize()
        dg = CuSP(4, "CVC").partition(g)
        res = approximate_diameter(dg, start=0)
        assert res.lower_bound == 5 + 8

    def test_cycle(self):
        g = cycle_graph(20).symmetrize()
        dg = CuSP(2, "EEC").partition(g)
        res = approximate_diameter(dg)
        assert res.lower_bound == 10

    def test_lower_bounds_true_diameter(self):
        g = get_dataset("kron", "tiny").symmetrize()
        dg = CuSP(4, "CVC").partition(g)
        res = approximate_diameter(dg)
        # True diameter via all-pairs on the small stand-in.
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import shortest_path

        mat = csr_matrix(
            (np.ones(g.num_edges), g.indices, g.indptr),
            shape=(g.num_nodes, g.num_nodes),
        )
        dist = shortest_path(mat, method="D", directed=True, unweighted=True)
        true_diameter = int(dist[np.isfinite(dist)].max())
        assert res.lower_bound <= true_diameter
        # Double sweep is usually tight; require at least half.
        assert res.lower_bound >= true_diameter / 2

    def test_empty_graph(self):
        g = CSRGraph.empty(5)
        dg = CuSP(2, "EEC").partition(g)
        res = approximate_diameter(dg, start=0)
        assert res.lower_bound == 0

    def test_default_start_is_max_degree(self):
        g = path_graph(6).symmetrize()
        dg = CuSP(2, "EEC").partition(g)
        res = approximate_diameter(dg)
        assert res.lower_bound == 5
        assert res.time > 0
