"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.graph import CSRGraph


def small():
    # 0->1, 0->2, 1->2, 2->0, 3 isolated
    return CSRGraph.from_edges([0, 0, 1, 2], [1, 2, 2, 0], num_nodes=4)


class TestConstruction:
    def test_from_edges_basic(self):
        g = small()
        assert g.num_nodes == 4
        assert g.num_edges == 4
        assert g.edge_set() == {(0, 1), (0, 2), (1, 2), (2, 0)}

    def test_from_edges_infers_num_nodes(self):
        g = CSRGraph.from_edges([0, 5], [5, 0])
        assert g.num_nodes == 6

    def test_from_edges_sorts(self):
        g = CSRGraph.from_edges([2, 0, 1, 0], [0, 2, 2, 1], num_nodes=3)
        src, dst = g.edges()
        assert src.tolist() == [0, 0, 1, 2]
        assert dst.tolist() == [1, 2, 2, 0]

    def test_from_edges_dedup(self):
        g = CSRGraph.from_edges([0, 0, 0], [1, 1, 2], num_nodes=3, dedup=True)
        assert g.num_edges == 2
        assert g.edge_set() == {(0, 1), (0, 2)}

    def test_from_edges_keeps_duplicates_by_default(self):
        g = CSRGraph.from_edges([0, 0], [1, 1], num_nodes=2)
        assert g.num_edges == 2

    def test_dedup_keeps_first_payload(self):
        g = CSRGraph.from_edges(
            [0, 0], [1, 1], num_nodes=2, edge_data=[7, 9], dedup=True
        )
        assert g.edge_data.tolist() == [7]

    def test_empty_graph(self):
        g = CSRGraph.empty(5)
        assert g.num_nodes == 5
        assert g.num_edges == 0
        assert g.out_degree().tolist() == [0] * 5

    def test_zero_node_graph(self):
        g = CSRGraph.empty(0)
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_mismatched_src_dst_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([0, 1], [0])

    def test_out_of_range_destination_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([0], [5], num_nodes=2)

    def test_out_of_range_source_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([5], [0], num_nodes=2)

    def test_negative_node_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([-1], [0], num_nodes=2)

    def test_bad_indptr_raises(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([1, 2]), indices=np.array([0]))
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([0, 2, 1]), indices=np.array([0, 0]))
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([0, 3]), indices=np.array([0]))

    def test_float_indices_rejected(self):
        with pytest.raises(TypeError):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([0.5]))

    def test_edge_data_length_checked(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([0], [1], num_nodes=2, edge_data=[1, 2])


class TestAccessors:
    def test_degrees(self):
        g = small()
        assert g.out_degree().tolist() == [2, 1, 1, 0]
        assert g.in_degree().tolist() == [1, 1, 2, 0]
        assert g.out_degree(0) == 2
        assert g.out_degree(np.array([0, 3])).tolist() == [2, 0]

    def test_neighbors(self):
        g = small()
        assert g.neighbors(0).tolist() == [1, 2]
        assert g.neighbors(3).tolist() == []

    def test_edge_sources_alignment(self):
        g = small()
        src = g.edge_sources()
        assert src.tolist() == [0, 0, 1, 2]

    def test_edge_weights(self):
        g = CSRGraph.from_edges([0, 0], [1, 2], num_nodes=3, edge_data=[10, 20])
        assert g.edge_weights(0).tolist() == [10, 20]
        assert small().edge_weights(0) is None

    def test_nbytes_positive(self):
        assert small().nbytes() > 0


class TestTransforms:
    def test_transpose_roundtrip(self):
        g = small()
        assert g.transpose().transpose() == g

    def test_transpose_reverses_edges(self):
        g = small()
        t = g.transpose()
        assert t.edge_set() == {(d, s) for s, d in g.edge_set()}

    def test_transpose_carries_weights(self):
        g = CSRGraph.from_edges([0, 1], [1, 0], num_nodes=2, edge_data=[5, 7])
        t = g.transpose()
        # edge 0->1 (w=5) becomes 1->0? No: transpose of (0,1,w5) is (1,0,w5)
        weights = {(s, d): w for s, d, w in zip(*t.edges(), t.edge_data.tolist())}
        assert weights == {(1, 0): 5, (0, 1): 7}

    def test_symmetrize(self):
        g = CSRGraph.from_edges([0], [1], num_nodes=3)
        s = g.symmetrize()
        assert s.edge_set() == {(0, 1), (1, 0)}

    def test_symmetrize_dedups_bidirectional(self):
        g = CSRGraph.from_edges([0, 1], [1, 0], num_nodes=2)
        assert g.symmetrize().num_edges == 2

    def test_with_uniform_weights(self):
        g = small().with_uniform_weights(3)
        assert g.is_weighted
        assert set(g.edge_data.tolist()) == {3}

    def test_with_random_weights_deterministic(self):
        a = small().with_random_weights(seed=42)
        b = small().with_random_weights(seed=42)
        assert np.array_equal(a.edge_data, b.edge_data)
        assert a.edge_data.min() >= 1

    def test_subgraph_rows(self):
        g = small()
        sub = g.subgraph_rows(0, 1)
        assert sub.edge_set() == {(0, 1), (0, 2)}
        assert sub.num_nodes == g.num_nodes

    def test_subgraph_rows_middle(self):
        g = small()
        sub = g.subgraph_rows(1, 3)
        assert sub.edge_set() == {(1, 2), (2, 0)}

    def test_subgraph_rows_invalid(self):
        with pytest.raises(ValueError):
            small().subgraph_rows(3, 1)
        with pytest.raises(ValueError):
            small().subgraph_rows(0, 99)

    def test_subgraph_rows_union_covers_graph(self):
        g = small()
        parts = [g.subgraph_rows(0, 2), g.subgraph_rows(2, 4)]
        union = set()
        for p in parts:
            union |= p.edge_set()
        assert union == g.edge_set()


class TestEquality:
    def test_eq(self):
        assert small() == small()

    def test_neq_different_edges(self):
        a = CSRGraph.from_edges([0], [1], num_nodes=2)
        b = CSRGraph.from_edges([1], [0], num_nodes=2)
        assert a != b

    def test_neq_weighted_vs_not(self):
        a = CSRGraph.from_edges([0], [1], num_nodes=2)
        b = CSRGraph.from_edges([0], [1], num_nodes=2, edge_data=[1])
        assert a != b

    def test_repr(self):
        assert "|V|=4" in repr(small())
