"""Tests for per-host memory estimation (the paper's OOM observations)."""

import numpy as np
import pytest

from repro.core import CuSP
from repro.graph import get_dataset
from repro.runtime import (
    MemoryBudgetExceeded,
    check_memory,
    cusp_peak_memory,
    xtrapulp_peak_memory,
)


@pytest.fixture(scope="module")
def crawl():
    return get_dataset("wdc", "tiny")


class TestEstimates:
    def test_cusp_peak_positive_and_per_host(self, crawl):
        dg = CuSP(4, "CVC").partition(crawl)
        peaks = cusp_peak_memory(dg, crawl)
        assert peaks.shape == (4,)
        assert np.all(peaks > 0)

    def test_cusp_peak_shrinks_with_hosts(self, crawl):
        small = cusp_peak_memory(CuSP(2, "EEC").partition(crawl), crawl)
        large = cusp_peak_memory(CuSP(8, "EEC").partition(crawl), crawl)
        assert large.max() < small.max()

    def test_csc_output_costs_more(self, crawl):
        csr = cusp_peak_memory(CuSP(4, "EEC").partition(crawl), crawl)
        csc = cusp_peak_memory(
            CuSP(4, "EEC").partition(crawl, output="csc"), crawl
        )
        assert csc.max() > csr.max()

    def test_xtrapulp_has_host_independent_floor(self, crawl):
        at2 = xtrapulp_peak_memory(crawl, 2)[0]
        at64 = xtrapulp_peak_memory(crawl, 64)[0]
        floor = 8 * crawl.num_nodes * 8  # the global label vectors
        assert at64 >= floor
        assert at2 > at64

    def test_paper_oom_asymmetry(self, crawl):
        """At the lowest host count XtraPulp exceeds a capacity that CuSP
        fits within — Figure 3's missing bars (SV-B)."""
        from repro.experiments.memory_study import scaled_capacity

        capacity = scaled_capacity(crawl)
        dg = CuSP(2, "EEC").partition(crawl)
        assert xtrapulp_peak_memory(crawl, 2).max() > capacity
        assert cusp_peak_memory(dg, crawl).max() <= capacity


class TestCheckMemory:
    def test_unlimited_never_raises(self):
        check_memory(np.array([10**12]), None)

    def test_raises_with_details(self):
        with pytest.raises(MemoryBudgetExceeded) as exc:
            check_memory(np.array([100, 300]), capacity=200)
        assert exc.value.host == 1
        assert exc.value.required == 300
        assert "MB" in str(exc.value)

    def test_passes_under_capacity(self):
        check_memory(np.array([100, 150]), capacity=200)
