"""Tests for partition quality metrics."""

import numpy as np
import pytest

from repro.core import CuSP
from repro.graph import CSRGraph, erdos_renyi, get_dataset
from repro.metrics import cut_fraction, geomean, measure_quality


@pytest.fixture(scope="module")
def crawl():
    return get_dataset("kron", "tiny")


class TestCutFraction:
    def test_no_cut_single_partition(self, crawl):
        masters = np.zeros(crawl.num_nodes, dtype=np.int32)
        assert cut_fraction(crawl, masters) == 0.0

    def test_all_cut(self):
        g = CSRGraph.from_edges([0, 1], [1, 0], num_nodes=2)
        masters = np.array([0, 1], dtype=np.int32)
        assert cut_fraction(g, masters) == 1.0

    def test_partial(self):
        g = CSRGraph.from_edges([0, 0], [1, 2], num_nodes=3)
        masters = np.array([0, 0, 1], dtype=np.int32)
        assert cut_fraction(g, masters) == 0.5

    def test_empty_graph(self):
        assert cut_fraction(CSRGraph.empty(3), np.zeros(3, dtype=np.int32)) == 0.0


class TestMeasureQuality:
    def test_fields(self, crawl):
        dg = CuSP(4, "CVC").partition(crawl)
        q = measure_quality(dg, crawl)
        assert q.policy == "CVC"
        assert q.num_partitions == 4
        assert 1.0 <= q.replication_factor <= 4.0
        assert q.node_balance >= 1.0
        assert q.edge_balance >= 1.0
        assert 0.0 <= q.cut_fraction <= 1.0
        assert 0 <= q.max_partners <= 3

    def test_single_partition_is_trivial(self, crawl):
        dg = CuSP(1, "EEC").partition(crawl)
        q = measure_quality(dg, crawl)
        assert q.replication_factor == 1.0
        assert q.cut_fraction == 0.0
        assert q.max_partners == 0

    def test_cvc_partner_bound(self, crawl):
        """CVC's partner count is bounded by its grid row + column."""
        from repro.core import grid_shape

        k = 16
        dg = CuSP(k, "CVC").partition(crawl)
        q = measure_quality(dg, crawl)
        pr, pc = grid_shape(k)
        assert q.max_partners <= (pr - 1) + (pc - 1) + 1

    def test_row_keys(self, crawl):
        dg = CuSP(2, "EEC").partition(crawl)
        row = measure_quality(dg, crawl).row()
        assert set(row) == {
            "policy", "k", "replication", "node_balance", "edge_balance",
            "cut_fraction", "max_partners",
        }


class TestGeomean:
    def test_basic(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_empty_is_nan(self):
        import math

        assert math.isnan(geomean([]))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([-1.0])

    def test_generator_input(self):
        assert geomean(x for x in (2.0, 8.0)) == pytest.approx(4.0)
