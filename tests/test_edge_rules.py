"""Tests for getEdgeOwner rules (paper Algorithm 2)."""

import numpy as np
import pytest

from repro.core import (
    CartesianRule,
    DegreeHashRule,
    DestRule,
    GraphProp,
    HybridRule,
    SourceRule,
    grid_shape,
    make_edge_rule,
)
from repro.graph import CSRGraph, erdos_renyi, star_graph


def prop_for(graph, k):
    return GraphProp(graph, k)


class TestGridShape:
    def test_perfect_square(self):
        assert grid_shape(16) == (4, 4)

    def test_rectangular(self):
        assert grid_shape(8) == (2, 4)
        assert grid_shape(12) == (3, 4)

    def test_prime(self):
        assert grid_shape(7) == (1, 7)

    def test_one(self):
        assert grid_shape(1) == (1, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_shape(0)


class TestSourceDest:
    def test_source_returns_src_master(self):
        p = prop_for(CSRGraph.empty(4), 4)
        assert SourceRule().owner(p, 0, 1, 2, 3) == 2

    def test_dest_returns_dst_master(self):
        p = prop_for(CSRGraph.empty(4), 4)
        assert DestRule().owner(p, 0, 1, 2, 3) == 3

    def test_batch(self):
        p = prop_for(CSRGraph.empty(4), 4)
        sm = np.array([0, 1])
        dm = np.array([2, 3])
        assert SourceRule().owner_batch(p, [0, 1], [2, 3], sm, dm).tolist() == [0, 1]
        assert DestRule().owner_batch(p, [0, 1], [2, 3], sm, dm).tolist() == [2, 3]

    def test_invariants(self):
        assert SourceRule().invariant == "edge-cut"
        assert DestRule().invariant == "edge-cut"


class TestHybrid:
    def test_low_degree_uses_source(self):
        g = star_graph(2)  # leaf 1 has degree 0
        p = prop_for(g, 2)
        rule = HybridRule(degree_threshold=5)
        assert rule.owner(p, 1, 2, src_master=0, dst_master=1) == 0

    def test_high_degree_uses_dest(self):
        g = star_graph(50)  # node 0 has degree 50
        p = prop_for(g, 2)
        rule = HybridRule(degree_threshold=5)
        assert rule.owner(p, 0, 1, src_master=0, dst_master=1) == 1

    def test_batch_matches_scalar(self):
        g = erdos_renyi(30, 400, seed=6)
        p = prop_for(g, 4)
        rule = HybridRule(degree_threshold=int(g.out_degree().mean()))
        src, dst = g.edges()
        sm = (src % 4).astype(np.int32)
        dm = (dst % 4).astype(np.int32)
        batch = rule.owner_batch(p, src, dst, sm, dm)
        scalar = [
            rule.owner(p, int(s), int(d), int(a), int(b))
            for s, d, a, b in zip(src, dst, sm, dm)
        ]
        assert batch.tolist() == scalar

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            HybridRule(degree_threshold=-1)


class TestCartesian:
    def test_paper_formula(self):
        # k=4 -> grid 2x2. srcmaster=3, dstmaster=2:
        # blockedRowOffset = (3 // 2) * 2 = 2; cyclic = 2 % 2 = 0 -> owner 2.
        p = prop_for(CSRGraph.empty(8), 4)
        assert CartesianRule().owner(p, 0, 1, 3, 2) == 2

    def test_owner_in_range(self):
        g = erdos_renyi(40, 600, seed=7)
        for k in (2, 3, 4, 6, 8, 9):
            p = prop_for(g, k)
            src, dst = g.edges()
            sm = (src % k).astype(np.int32)
            dm = (dst % k).astype(np.int32)
            owners = CartesianRule().owner_batch(p, src, dst, sm, dm)
            assert owners.min() >= 0 and owners.max() < k

    def test_row_column_structure(self):
        """Edges from a fixed source master only land in that master's grid
        row, which is the CVC communication invariant (paper §V-B)."""
        k = 8
        _, pc = grid_shape(k)
        p = prop_for(CSRGraph.empty(k), k)
        rule = CartesianRule()
        for sm in range(k):
            row = (sm // pc) * pc
            owners = {rule.owner(p, 0, 1, sm, dm) for dm in range(k)}
            assert owners == set(range(row, row + pc))

    def test_batch_matches_scalar(self):
        g = erdos_renyi(30, 300, seed=8)
        p = prop_for(g, 6)
        src, dst = g.edges()
        sm = (src % 6).astype(np.int32)
        dm = (dst % 6).astype(np.int32)
        rule = CartesianRule()
        batch = rule.owner_batch(p, src, dst, sm, dm)
        scalar = [
            rule.owner(p, int(s), int(d), int(a), int(b))
            for s, d, a, b in zip(src, dst, sm, dm)
        ]
        assert batch.tolist() == scalar


class TestDegreeHash:
    def test_hashes_lower_degree_endpoint(self):
        g = star_graph(50)
        p = prop_for(g, 4)
        rule = DegreeHashRule()
        # node 0 (deg 50) -> leaf (deg 0): hash the leaf
        owner = rule.owner(p, 0, 7, 0, 1)
        assert owner == int(rule._hash(np.array([7]), 4)[0])

    def test_batch_matches_scalar(self):
        g = erdos_renyi(25, 250, seed=9)
        p = prop_for(g, 4)
        rule = DegreeHashRule()
        src, dst = g.edges()
        sm = np.zeros_like(src, dtype=np.int32)
        dm = np.zeros_like(dst, dtype=np.int32)
        batch = rule.owner_batch(p, src, dst, sm, dm)
        scalar = [
            rule.owner(p, int(s), int(d), 0, 0) for s, d in zip(src, dst)
        ]
        assert batch.tolist() == scalar

    def test_hash_spreads(self):
        vals = DegreeHashRule._hash(np.arange(1000), 8)
        counts = np.bincount(vals.astype(int), minlength=8)
        assert counts.min() > 50


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["Source", "Dest", "Hybrid", "Cartesian", "DegreeHash"]
    )
    def test_make(self, name):
        assert make_edge_rule(name).name == name

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_edge_rule("Random")
