"""Tests for the whole-program interprocedural analysis (repro.analysis.ipa).

The evasion corpus under ``tests/lint_corpus/deep/`` is the contract:
every fixture is a shallow false negative by construction, and the deep
pass must catch it with a call-chain witness.  The remaining tests pin
the engine's operational guarantees — one AST parse per module shared
across shallow and deep layers, deterministic finding order, and an
incremental cache that re-analyzes only changed files.
"""

from __future__ import annotations

import ast
import json
import shutil
from pathlib import Path

import pytest

from repro.analysis.ipa import all_deep_rules, run_deep_lint
from repro.analysis.lint.base import all_rules, run_lint

DEEP = Path(__file__).parent / "lint_corpus" / "deep"

# (fixture, deep rule, substrings every witness must contain)
EVASIONS = [
    (
        "evade_comm.py",
        "deep-comm-in-task",
        ["poke_peers", "allreduce_sum", "HostTask body"],
    ),
    (
        "evade_rng.py",
        "deep-unseeded-rng",
        ["jitter", "fresh_rng", "default_rng", "seed"],
    ),
    (
        "evade_clock.py",
        "deep-determinism-taint",
        ["wall-clock", "bench_util.py", "elapsed_stamp"],
    ),
    (
        "evade_capture.py",
        "deep-unshippable-task-capture",
        ["tallies", "record_result"],
    ),
    (
        "evade_payload.py",
        "deep-unshippable-payload",
        ["threading.Lock", "make_channel", "Channel.__init__"],
    ),
]


def deep_report(root=DEEP, cache=None):
    return run_lint([root], root=root, deep=True, cache=cache)


class TestEvasionFixtures:
    """Each fixture: invisible to every shallow rule, caught by --deep."""

    def test_corpus_is_shallow_clean(self):
        report = run_lint([DEEP], root=DEEP)
        assert report.findings == [], [
            (f.path, f.rule) for f in report.findings
        ]

    @pytest.mark.parametrize("fname,rule,needles", EVASIONS)
    def test_deep_catches_each_evasion(self, fname, rule, needles):
        report = deep_report()
        hits = [
            f for f in report.findings if f.path == fname and f.rule == rule
        ]
        assert hits, (
            f"{rule} produced no finding for {fname}; got "
            f"{[(f.path, f.rule) for f in report.findings]}"
        )
        message = hits[0].message
        for needle in needles:
            assert needle in message, (needle, message)

    @pytest.mark.parametrize("fname,rule,needles", EVASIONS)
    def test_witness_names_every_hop(self, fname, rule, needles):
        """The chain walks at least one call edge and cites file:line."""
        report = deep_report()
        message = next(
            f.message
            for f in report.findings
            if f.path == fname and f.rule == rule
        )
        assert " -> " in message
        # every hop is anchored to a source location
        assert message.count(".py:") >= 2

    def test_unshippable_payload_is_an_error(self):
        report = deep_report()
        finding = next(
            f for f in report.findings if f.rule == "deep-unshippable-payload"
        )
        assert finding.severity == "error"
        assert not report.ok(strict=True)


class TestSingleParse:
    """run_lint parses each module exactly once, shared across all rules."""

    def _count_parses(self, monkeypatch):
        counts = {"n": 0}
        real_parse = ast.parse

        def counting_parse(*args, **kwargs):
            # ModuleSource is the only caller that passes filename=;
            # mode="eval" mini-parses of annotation strings don't count.
            if "filename" in kwargs:
                counts["n"] += 1
            return real_parse(*args, **kwargs)

        monkeypatch.setattr(ast, "parse", counting_parse)
        return counts

    def test_shallow_parses_each_file_once(self, monkeypatch):
        counts = self._count_parses(monkeypatch)
        report = run_lint([DEEP], root=DEEP)
        assert counts["n"] == report.files_checked

    def test_deep_shares_the_shallow_parse(self, monkeypatch):
        # Deep mode runs 11 shallow rules AND builds summaries for 5
        # deep rules, still from one parse per module.
        counts = self._count_parses(monkeypatch)
        report = deep_report()
        assert counts["n"] == report.files_checked

    def test_warm_cache_parses_nothing(self, tmp_path, monkeypatch):
        corpus = tmp_path / "corpus"
        shutil.copytree(DEEP, corpus)
        cache = tmp_path / "deep.json"
        deep_report(root=corpus, cache=cache)
        counts = self._count_parses(monkeypatch)
        report = deep_report(root=corpus, cache=cache)
        assert counts["n"] == 0
        assert report.cache_hits == report.files_checked


class TestIncrementalCache:
    """Warm re-runs analyze only changed files, with identical results."""

    def test_hit_miss_counters(self, tmp_path):
        corpus = tmp_path / "corpus"
        shutil.copytree(DEEP, corpus)
        cache = tmp_path / "deep.json"
        nfiles = len(list(corpus.glob("*.py")))

        cold = deep_report(root=corpus, cache=cache)
        assert (cold.cache_hits, cold.cache_misses) == (0, nfiles)

        warm = deep_report(root=corpus, cache=cache)
        assert (warm.cache_hits, warm.cache_misses) == (nfiles, 0)
        assert json.loads(warm.to_json())["findings"] == json.loads(
            cold.to_json()
        )["findings"]

        # touching one file invalidates exactly that file
        target = corpus / "evade_rng.py"
        target.write_text(target.read_text() + "\n# touched\n")
        touched = deep_report(root=corpus, cache=cache)
        assert (touched.cache_hits, touched.cache_misses) == (nfiles - 1, 1)
        assert [f.rule for f in touched.findings] == [
            f.rule for f in cold.findings
        ]

    def test_deleted_files_are_pruned(self, tmp_path):
        corpus = tmp_path / "corpus"
        shutil.copytree(DEEP, corpus)
        cache = tmp_path / "deep.json"
        deep_report(root=corpus, cache=cache)
        (corpus / "evade_payload.py").unlink()
        deep_report(root=corpus, cache=cache)
        entries = json.loads(cache.read_text())["entries"]
        assert "evade_payload.py" not in entries

    def test_rule_change_invalidates_cache(self, tmp_path):
        corpus = tmp_path / "corpus"
        shutil.copytree(DEEP, corpus)
        cache = tmp_path / "deep.json"
        deep_report(root=corpus, cache=cache)
        doc = json.loads(cache.read_text())
        doc["rules_key"] = "stale"
        cache.write_text(json.dumps(doc))
        report = deep_report(root=corpus, cache=cache)
        assert report.cache_misses == report.files_checked

    def test_corrupt_cache_is_ignored(self, tmp_path):
        corpus = tmp_path / "corpus"
        shutil.copytree(DEEP, corpus)
        cache = tmp_path / "deep.json"
        cache.write_text("{not json")
        report = deep_report(root=corpus, cache=cache)
        assert report.cache_misses == report.files_checked
        # and the run rewrites it into a loadable state
        assert json.loads(cache.read_text())["entries"]


class TestCacheConcurrency:
    """Concurrent runs sharing one cache file stay safe and uncorrupted."""

    def make_cache(self, tmp_path):
        from repro.analysis.ipa.cache import DeepCache

        cache = DeepCache.load(tmp_path / "deep.json", "k")
        cache.put("mod.py", {"sha": "abc"})
        return cache

    def test_save_publishes_atomically(self, tmp_path):
        cache = self.make_cache(tmp_path)
        cache.save()
        assert not cache.dirty
        doc = json.loads((tmp_path / "deep.json").read_text())
        assert doc["entries"]["mod.py"]["sha"] == "abc"
        # no leaked temp files, no leaked lock
        assert list(tmp_path.glob("*.tmp")) == []
        assert not cache.lock_path.exists()

    def test_live_lock_skips_save(self, tmp_path):
        import os

        cache = self.make_cache(tmp_path)
        cache.lock_path.write_text(str(os.getpid()))  # a live holder: us
        cache.save()
        assert cache.dirty  # skipped: nothing persisted
        assert not (tmp_path / "deep.json").exists()
        assert cache.lock_path.read_text() == str(os.getpid())  # untouched

    def test_dead_lock_is_stolen(self, tmp_path):
        import subprocess
        import sys

        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()  # reaped: its pid no longer names a live process
        cache = self.make_cache(tmp_path)
        cache.lock_path.write_text(str(proc.pid))
        cache.save()
        assert not cache.dirty
        assert json.loads((tmp_path / "deep.json").read_text())["entries"]
        assert not cache.lock_path.exists()

    def test_garbage_lock_is_stolen(self, tmp_path):
        cache = self.make_cache(tmp_path)
        cache.lock_path.write_text("not-a-pid")
        cache.save()
        assert not cache.dirty
        assert not cache.lock_path.exists()

    def test_parallel_writers_never_corrupt(self, tmp_path):
        import concurrent.futures

        path = tmp_path / "deep.json"
        with concurrent.futures.ProcessPoolExecutor(max_workers=4) as pool:
            list(pool.map(_hammer_cache, [(str(path), w) for w in range(4)]))
        # whatever interleaving happened, the survivor parses and no
        # temp or lock debris remains
        from repro.analysis.ipa.cache import CACHE_VERSION

        doc = json.loads(path.read_text())
        assert doc["version"] == CACHE_VERSION
        assert doc["entries"]
        assert list(tmp_path.glob("*.tmp")) == []
        assert not path.with_name(path.name + ".lock").exists()

    def test_reader_sees_old_or_new_never_torn(self, tmp_path):
        cache = self.make_cache(tmp_path)
        cache.save()
        # a second generation over the same path
        again = self.make_cache(tmp_path)
        again.put("other.py", {"sha": "def"})
        again.save()
        doc = json.loads((tmp_path / "deep.json").read_text())
        assert set(doc["entries"]) == {"mod.py", "other.py"}


def _hammer_cache(arg):
    """Worker for the parallel-writers test (module-level: picklable)."""
    from repro.analysis.ipa.cache import DeepCache

    path, worker = arg
    for round_no in range(5):
        cache = DeepCache.load(path, "k")
        cache.put(f"w{worker}-r{round_no}.py", {"sha": f"{worker}:{round_no}"})
        cache.save()
    return worker


class TestDeepSuppressionGovernance:
    """Suppressions on deep-rule anchors survive the incremental cache."""

    def suppressed_corpus(self, tmp_path):
        """Copy the evasion corpus and suppress evade_rng's deep finding."""
        corpus = tmp_path / "corpus"
        shutil.copytree(DEEP, corpus)
        baseline = deep_report(root=corpus)
        anchor = next(
            f for f in baseline.findings if f.rule == "deep-unseeded-rng"
        )
        target = corpus / anchor.path
        lines = target.read_text().splitlines()
        lines[anchor.line - 1] += (
            "  # repro-lint: disable=deep-unseeded-rng -- governance test"
        )
        target.write_text("\n".join(lines) + "\n")
        return corpus, baseline

    def test_cold_and_warm_runs_agree(self, tmp_path):
        corpus, baseline = self.suppressed_corpus(tmp_path)
        cache = tmp_path / "deep.json"
        nfiles = len(list(corpus.glob("*.py")))

        cold = deep_report(root=corpus, cache=cache)
        assert "deep-unseeded-rng" not in {f.rule for f in cold.findings}
        assert cold.suppressed == baseline.suppressed + 1
        assert cold.cache_misses == nfiles

        warm = deep_report(root=corpus, cache=cache)
        assert warm.cache_hits == nfiles
        assert {f.rule for f in warm.findings} == {
            f.rule for f in cold.findings
        }
        assert warm.suppressed == cold.suppressed
        assert json.loads(warm.to_json())["findings"] == json.loads(
            cold.to_json()
        )["findings"]

    def test_suppression_applies_when_served_from_cache(self, tmp_path):
        # The suppressing file itself is a cache *hit* while another
        # file misses: the suppression table must come from the cache.
        corpus, _ = self.suppressed_corpus(tmp_path)
        cache = tmp_path / "deep.json"
        cold = deep_report(root=corpus, cache=cache)
        other = corpus / "evade_clock.py"
        other.write_text(other.read_text() + "\n# touched\n")
        mixed = deep_report(root=corpus, cache=cache)
        assert mixed.cache_misses == 1
        assert "deep-unseeded-rng" not in {f.rule for f in mixed.findings}
        assert mixed.suppressed == cold.suppressed

    def test_removing_the_suppression_resurfaces_the_finding(self, tmp_path):
        corpus, baseline = self.suppressed_corpus(tmp_path)
        cache = tmp_path / "deep.json"
        deep_report(root=corpus, cache=cache)
        anchor = next(
            f for f in baseline.findings if f.rule == "deep-unseeded-rng"
        )
        target = corpus / anchor.path
        target.write_text(
            target.read_text().replace(
                "  # repro-lint: disable=deep-unseeded-rng"
                " -- governance test",
                "",
            )
        )
        report = deep_report(root=corpus, cache=cache)
        assert "deep-unseeded-rng" in {f.rule for f in report.findings}
        assert report.suppressed == baseline.suppressed


class TestDeterministicOrder:
    """Findings sort by (path, line, col, rule) regardless of input order."""

    def test_input_order_does_not_matter(self):
        files = sorted(DEEP.glob("*.py"))
        fwd = run_lint(files, root=DEEP, deep=True)
        rev = run_lint(list(reversed(files)), root=DEEP, deep=True)
        assert fwd.to_json() == rev.to_json()
        keys = [(f.path, f.line, f.col, f.rule) for f in fwd.findings]
        assert keys == sorted(keys)

    def test_json_is_byte_stable_across_runs(self):
        assert deep_report().to_json() == deep_report().to_json()


class TestEngineApi:
    def test_run_deep_lint_direct(self):
        files = sorted(DEEP.glob("*.py"))
        report = run_deep_lint(
            files,
            DEEP,
            list(all_rules().values()),
            None,
            list(all_deep_rules().values()),
        )
        assert {f.rule for f in report.findings} == {
            rule for _, rule, _ in EVASIONS
        }

    def test_deep_rules_registry(self):
        rules = all_deep_rules()
        assert set(rules) == {
            "deep-comm-in-task",
            "deep-unseeded-rng",
            "deep-determinism-taint",
            "deep-unshippable-task-capture",
            "deep-unshippable-payload",
        }
        assert all(name == rule.name for name, rule in rules.items())


class TestSourceTreeIsClean:
    """src/repro passes --deep --strict (suppressions are justified)."""

    def test_src_repro_deep_strict(self):
        src = Path(__file__).parent.parent / "src" / "repro"
        report = run_lint([src], root=src.parent, deep=True)
        assert report.ok(strict=True), report.summary() + "\n" + "\n".join(
            f"{f.path}:{f.line} {f.rule} {f.message}"
            for f in report.findings
        )
