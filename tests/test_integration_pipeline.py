"""End-to-end integration: the complete downstream-user workflow.

generate -> write to disk -> convert formats -> partition from disk ->
save partitions -> reload -> run every application -> verify against
references -> compare against every baseline.  One test class per stage
plus a whole-pipeline test.
"""

import numpy as np
import pytest

from repro.analytics import (
    BFS,
    ConnectedComponents,
    Engine,
    KCore,
    PageRank,
    SSSP,
    bfs_reference,
    cc_reference,
    default_source,
    kcore_reference,
    pagerank_reference,
    sssp_reference,
)
from repro.baselines import MultilevelPartitioner, XtraPulp, hash_partition
from repro.core import CuSP, WindowedPartitioner, load_partitions, save_partitions
from repro.graph import (
    convert,
    read_edgelist,
    read_gr,
    webcrawl_like,
    write_gr,
)


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A populated on-disk workspace shared by the pipeline stages."""
    root = tmp_path_factory.mktemp("pipeline")
    graph = webcrawl_like(2500, avg_degree=12, seed=21)
    write_gr(graph, root / "crawl.gr")
    return root, graph


class TestFullPipeline:
    def test_format_conversions_chain(self, workspace):
        root, graph = workspace
        convert(root / "crawl.gr", root / "crawl.el")
        convert(root / "crawl.el", root / "crawl2.gr")
        assert read_gr(root / "crawl2.gr").edge_set() == graph.edge_set()

    def test_partition_save_reload_run_everything(self, workspace):
        root, graph = workspace
        dg = CuSP(6, "CVC").partition(root / "crawl.gr")
        dg.validate(graph)
        save_partitions(dg, root / "parts")
        loaded = load_partitions(root / "parts")
        loaded.validate(graph)

        source = default_source(graph)
        engine = Engine(loaded)
        bfs = engine.run(BFS(source))
        assert np.array_equal(bfs.values, bfs_reference(graph, source))
        pr = engine.run(PageRank())
        assert np.allclose(pr.values, pagerank_reference(graph), atol=5e-4)

        sym = graph.symmetrize()
        sym_dg = CuSP(6, "CVC").partition(sym)
        cc = Engine(sym_dg).run(ConnectedComponents())
        assert np.array_equal(cc.values, cc_reference(sym))
        k = int(np.median(sym.out_degree()))
        app = KCore(k)
        core = Engine(sym_dg).run(app)
        assert np.array_equal(app.in_core(core.values), kcore_reference(sym, k) >= k)

        weighted = graph.with_random_weights(seed=21)
        w_dg = CuSP(6, "CVC").partition(weighted)
        sssp = Engine(w_dg).run(SSSP(source))
        assert np.array_equal(sssp.values, sssp_reference(weighted, source))

    def test_every_partitioner_agrees_on_bfs(self, workspace):
        """The answer must be partitioner-independent — the strongest
        cross-system consistency check in the suite."""
        _, graph = workspace
        source = default_source(graph)
        expected = bfs_reference(graph, source)
        partitioners = {
            "EEC": lambda: CuSP(4, "EEC").partition(graph),
            "SVC": lambda: CuSP(4, "SVC", sync_rounds=3).partition(graph),
            "HDRF": lambda: CuSP(4, "HDRF").partition(graph),
            "window": lambda: WindowedPartitioner(4, window_size=8).partition(graph),
            "xtrapulp": lambda: XtraPulp(4).partition(graph),
            "multilevel": lambda: MultilevelPartitioner(4).partition(graph),
            "hash": lambda: hash_partition(graph, 4),
        }
        for name, build in partitioners.items():
            dg = build()
            dg.validate(graph)
            res = Engine(dg).run(BFS(source))
            assert np.array_equal(res.values, expected), name

    def test_quality_ordering_sanity(self, workspace):
        """Structure-aware partitioners should not cut worse than hash."""
        from repro.metrics import cut_fraction

        _, graph = workspace
        hash_cut = cut_fraction(graph, hash_partition(graph, 4).masters)
        for build in (XtraPulp(4), MultilevelPartitioner(4)):
            cut = cut_fraction(graph, build.partition(graph).masters)
            assert cut <= hash_cut + 0.02
