"""Tests for named datasets and Table III property computation."""

import pytest

from repro.graph import (
    CSRGraph,
    compute_properties,
    dataset_names,
    degree_histogram,
    get_dataset,
)
from repro.graph.datasets import DATASETS, SCALES


class TestDatasets:
    def test_names_match_paper_order(self):
        assert dataset_names() == ["kron", "gsh", "clueweb", "uk", "wdc"]

    @pytest.mark.parametrize("name", dataset_names())
    def test_tiny_datasets_build(self, name):
        g = get_dataset(name, "tiny")
        assert g.num_nodes > 0
        assert g.num_edges > 0

    def test_memoized(self):
        assert get_dataset("kron", "tiny") is get_dataset("kron", "tiny")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_dataset("nope")

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_dataset("kron", "huge")

    def test_wdc_is_largest_crawl(self):
        sizes = {n: get_dataset(n, "tiny").num_nodes for n in dataset_names()}
        crawls = {k: v for k, v in sizes.items() if k != "kron"}
        assert max(crawls, key=crawls.get) == "wdc"

    @pytest.mark.parametrize("name", ["gsh", "clueweb", "uk", "wdc"])
    def test_crawls_have_in_degree_skew(self, name):
        g = get_dataset(name, "tiny")
        assert g.in_degree().max() > g.out_degree().max()

    def test_avg_degree_ordering_tracks_paper(self):
        # uk14 has the highest |E|/|V| among the crawls in Table III.
        ratios = {
            n: get_dataset(n, "tiny").num_edges / get_dataset(n, "tiny").num_nodes
            for n in ["gsh", "clueweb", "uk", "wdc"]
        }
        assert max(ratios, key=ratios.get) == "uk"

    def test_specs_have_paper_names(self):
        assert DATASETS["kron"].paper_name == "kron30"
        assert DATASETS["wdc"].paper_name == "wdc12"

    def test_scales_increase(self):
        assert SCALES["tiny"] < SCALES["small"] < SCALES["bench"]


class TestProperties:
    def test_compute_properties(self):
        g = CSRGraph.from_edges([0, 0, 1], [1, 2, 2], num_nodes=3)
        p = compute_properties(g, name="t")
        assert p.num_nodes == 3
        assert p.num_edges == 3
        assert p.avg_degree == 1.0
        assert p.max_out_degree == 2
        assert p.max_in_degree == 2
        assert p.size_on_disk > 0

    def test_properties_row_keys(self):
        g = CSRGraph.from_edges([0], [1], num_nodes=2)
        row = compute_properties(g, "x").row()
        assert row["graph"] == "x"
        assert set(row) == {
            "graph", "|V|", "|E|", "|E|/|V|",
            "MaxOutDegree", "MaxInDegree", "SizeOnDisk(MB)",
        }

    def test_empty_graph_properties(self):
        g = CSRGraph.empty(0)
        p = compute_properties(g)
        assert p.avg_degree == 0.0
        assert p.max_out_degree == 0

    def test_degree_histogram_out(self):
        g = CSRGraph.from_edges([0, 0], [1, 2], num_nodes=3)
        h = degree_histogram(g, "out")
        assert h.tolist() == [2, 0, 1]  # two deg-0 nodes, one deg-2

    def test_degree_histogram_in(self):
        g = CSRGraph.from_edges([0, 0], [1, 2], num_nodes=3)
        h = degree_histogram(g, "in")
        assert h.tolist() == [1, 2]

    def test_degree_histogram_invalid_direction(self):
        with pytest.raises(ValueError):
            degree_histogram(CSRGraph.empty(1), "sideways")
