"""Tests for policy composition (Table II) and the graph-reading split."""

import numpy as np
import pytest

from repro.core import (
    PAPER_POLICIES,
    POLICY_TABLE,
    Policy,
    compute_read_ranges,
    make_edge_rule,
    make_master_rule,
    make_policy,
    policy_names,
    read_bytes_for_range,
)
from repro.graph import CSRGraph, erdos_renyi, star_graph


class TestPolicyTable:
    def test_paper_table_ii(self):
        assert POLICY_TABLE["EEC"] == ("ContiguousEB", "Source")
        assert POLICY_TABLE["HVC"] == ("ContiguousEB", "Hybrid")
        assert POLICY_TABLE["CVC"] == ("ContiguousEB", "Cartesian")
        assert POLICY_TABLE["FEC"] == ("FennelEB", "Source")
        assert POLICY_TABLE["GVC"] == ("FennelEB", "Hybrid")
        assert POLICY_TABLE["SVC"] == ("FennelEB", "Cartesian")

    def test_paper_policies_subset(self):
        assert set(PAPER_POLICIES) <= set(policy_names())

    @pytest.mark.parametrize("name", policy_names())
    def test_make_all(self, name):
        policy = make_policy(name)
        assert policy.name == name
        assert policy.input_format == "csr"

    def test_invariants(self):
        assert make_policy("EEC").invariant == "edge-cut"
        assert make_policy("FEC").invariant == "edge-cut"
        assert make_policy("CVC").invariant == "2d-cut"
        assert make_policy("SVC").invariant == "2d-cut"
        assert make_policy("HVC").invariant == "vertex-cut"
        assert make_policy("GVC").invariant == "vertex-cut"

    def test_csc_variant(self):
        policy = make_policy("HVC", input_format="csc")
        assert policy.input_format == "csc"

    def test_invalid_input_format(self):
        with pytest.raises(ValueError):
            Policy("x", make_master_rule("Contiguous"), make_edge_rule("Source"),
                   input_format="coo")

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            make_policy("XYZ")

    def test_threshold_and_gamma_forwarded(self):
        policy = make_policy("GVC", degree_threshold=42, gamma=1.25)
        assert policy.master_rule.degree_threshold == 42
        assert policy.master_rule.gamma == 1.25
        assert policy.edge_rule.degree_threshold == 42

    def test_describe(self):
        text = make_policy("CVC").describe()
        assert "ContiguousEB" in text and "Cartesian" in text


class TestReadRanges:
    def test_cover_and_disjoint(self):
        g = erdos_renyi(100, 1000, seed=1)
        ranges = compute_read_ranges(g, 4)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 100
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c
            assert a <= b

    def test_edge_balanced_default(self):
        g = erdos_renyi(300, 6000, seed=2)
        ranges = compute_read_ranges(g, 4)
        loads = [int(g.indptr[b] - g.indptr[a]) for a, b in ranges]
        assert max(loads) <= 1.25 * (sum(loads) / 4)

    def test_matches_contiguous_eb_blocks(self):
        """The default split must coincide with ContiguousEB masters so
        that EEC needs no communication (paper §V-A)."""
        from repro.core import ContiguousEB, GraphProp

        g = erdos_renyi(123, 2345, seed=3)
        k = 5
        ranges = compute_read_ranges(g, k)
        rule = ContiguousEB()
        parts = rule.assign_batch(GraphProp(g, k), np.arange(123), None)
        for h, (a, b) in enumerate(ranges):
            assert np.all(parts[a:b] == h)

    def test_node_balanced(self):
        g = star_graph(99)  # all edges on node 0
        ranges = compute_read_ranges(g, 4, node_weight=1, edge_weight=0)
        sizes = [b - a for a, b in ranges]
        # ceil'd block arithmetic: equal blocks with a short tail.
        assert sizes[:-1] == [26, 26, 26]
        assert sizes[-1] <= sizes[0]

    def test_never_splits_a_node(self):
        # A node's edges stay on one host by construction (ranges are in
        # node coordinates); check boundaries are valid node indices.
        g = star_graph(50)
        ranges = compute_read_ranges(g, 8)
        assert all(0 <= a <= b <= 51 for a, b in ranges)

    def test_more_hosts_than_nodes(self):
        g = erdos_renyi(3, 6, seed=4)
        ranges = compute_read_ranges(g, 8)
        assert ranges[-1][1] == 3
        total = sum(b - a for a, b in ranges)
        assert total == 3  # some hosts get nothing

    def test_empty_graph(self):
        g = CSRGraph.empty(10)
        ranges = compute_read_ranges(g, 2)
        assert ranges[0] == (0, 5)
        assert ranges[1] == (5, 10)

    def test_single_host(self):
        g = erdos_renyi(10, 20, seed=5)
        assert compute_read_ranges(g, 1) == [(0, 10)]

    def test_invalid_args(self):
        g = CSRGraph.empty(4)
        with pytest.raises(ValueError):
            compute_read_ranges(g, 0)
        with pytest.raises(ValueError):
            compute_read_ranges(g, 2, node_weight=0, edge_weight=0)
        with pytest.raises(ValueError):
            compute_read_ranges(g, 2, node_weight=-1)

    def test_read_bytes(self):
        g = erdos_renyi(10, 40, seed=6)
        full = read_bytes_for_range(g, 0, 10)
        assert full == 11 * 8 + 40 * 8
        assert read_bytes_for_range(g, 3, 3) == 0

    def test_read_bytes_weighted(self):
        g = erdos_renyi(10, 40, seed=6).with_uniform_weights()
        assert read_bytes_for_range(g, 0, 10) == 11 * 8 + 40 * 16
