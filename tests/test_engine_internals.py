"""White-box tests of the analytics engine's mechanics."""

import numpy as np
import pytest

from repro.analytics import BFS, ConnectedComponents, Engine, VertexProgram
from repro.core import CuSP
from repro.graph import CSRGraph, erdos_renyi, get_dataset, path_graph


@pytest.fixture(scope="module")
def crawl():
    return get_dataset("kron", "tiny")


class TestAddressBooks:
    def test_read_mask_matches_out_degree(self, crawl):
        dg = CuSP(4, "CVC").partition(crawl)
        engine = Engine(dg)
        for q, part in enumerate(dg.partitions):
            assert np.array_equal(
                engine.read_mask[q], part.local_graph.out_degree() > 0
            )

    def test_bcast_book_alignment(self, crawl):
        """Every (m_local, q_local) pair must name the same global vertex."""
        dg = CuSP(4, "HVC").partition(crawl)
        engine = Engine(dg)
        for m, targets in enumerate(engine.bcast):
            for q, (m_local, q_local) in targets.items():
                m_g = dg.partitions[m].global_ids[m_local]
                q_g = dg.partitions[q].global_ids[q_local]
                assert np.array_equal(m_g, q_g)
                # All targets are mirrors mastered at m and readable at q.
                assert np.all(dg.masters[q_g] == m)
                assert np.all(engine.read_mask[q][q_local])

    def test_single_partition_book_empty(self, crawl):
        dg = CuSP(1, "EEC").partition(crawl)
        engine = Engine(dg)
        assert engine.bcast == [{}]


class TestRunMechanics:
    def test_per_round_comm_monotone_then_quiet(self):
        """BFS frontier grows then dies; the final round exchanges nothing
        but the convergence collective."""
        g = path_graph(20)
        dg = CuSP(4, "EEC").partition(g)
        res = Engine(dg).run(BFS(0))
        per_round = res.per_round_comm_bytes()
        assert len(per_round) == res.rounds
        assert per_round[-1] == 0.0  # quiescent closing round

    def test_round_limit_override(self, crawl):
        dg = CuSP(4, "CVC").partition(crawl)
        res = Engine(dg).run(ConnectedComponents(), max_rounds=1)
        assert res.rounds == 1

    def test_every_round_has_convergence_collective(self, crawl):
        dg = CuSP(4, "CVC").partition(crawl)
        res = Engine(dg).run(BFS(0))
        for phase in res.breakdown.phases:
            assert phase.collective > 0

    def test_extract_prefers_masters(self, crawl):
        """extract() must read canonical (master) values only."""
        dg = CuSP(4, "HVC").partition(crawl)

        class Marker(VertexProgram):
            name = "marker"

            def init_values(self, dg, engine):
                vals = []
                for part in dg.partitions:
                    v = np.full(part.num_proxies, -1, dtype=np.int64)
                    v[: part.num_masters] = part.master_global_ids
                    vals.append(v)
                return vals

            def initial_frontier(self, dg):
                return [np.zeros(p.num_proxies, dtype=bool) for p in dg.partitions]

            def compute(self, part, values, frontier):
                return np.zeros(part.num_proxies, dtype=bool), 0.0

        res = Engine(dg).run(Marker())
        assert np.array_equal(res.values, np.arange(crawl.num_nodes))

    def test_engine_reusable_across_runs(self, crawl):
        dg = CuSP(4, "CVC").partition(crawl)
        engine = Engine(dg)
        a = engine.run(BFS(0))
        b = engine.run(BFS(0))
        assert np.array_equal(a.values, b.values)

    def test_buffer_size_affects_messages(self):
        g = erdos_renyi(400, 4000, seed=33)
        dg = CuSP(8, "HVC").partition(g)
        big = Engine(dg, buffer_size=8 << 20).run(ConnectedComponents())
        none = Engine(dg, buffer_size=0).run(ConnectedComponents())
        msgs_big = sum(p.comm_messages for p in big.breakdown.phases)
        msgs_none = sum(p.comm_messages for p in none.breakdown.phases)
        assert msgs_none >= msgs_big
        assert np.array_equal(big.values, none.values)


class TestGlobalOutDegrees:
    def test_sums_to_true_degree(self, crawl):
        dg = CuSP(4, "HVC").partition(crawl)
        engine = Engine(dg)
        per_part = engine.global_out_degrees()
        true_deg = crawl.out_degree()
        for part, degs in zip(dg.partitions, per_part):
            assert np.array_equal(degs, true_deg[part.global_ids])
