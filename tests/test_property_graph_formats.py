"""Property-based tests for graph storage, transforms, and formats."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    CSRGraph,
    read_edgelist,
    read_gr,
    read_gr_slice,
    write_edgelist,
    write_gr,
)


@st.composite
def graphs(draw, max_nodes=50, max_edges=200, weighted=False):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    data = None
    if weighted:
        data = draw(st.lists(st.integers(1, 1000), min_size=m, max_size=m))
    return CSRGraph.from_edges(
        np.array(src, dtype=np.int64),
        np.array(dst, dtype=np.int64),
        num_nodes=n,
        edge_data=np.array(data, dtype=np.int64) if weighted else None,
    )


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_transpose_involution(g):
    assert g.transpose().transpose() == g


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_transpose_preserves_degree_sums(g):
    t = g.transpose()
    assert np.array_equal(g.out_degree(), t.in_degree())
    assert np.array_equal(g.in_degree(), t.out_degree())


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_symmetrize_idempotent(g):
    s = g.symmetrize()
    assert s.symmetrize() == s


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_symmetrize_contains_original_simple_edges(g):
    s = g.symmetrize()
    assert g.edge_set() <= s.edge_set()
    # symmetric: edge set closed under reversal
    assert {(b, a) for a, b in s.edge_set()} == s.edge_set()


@settings(max_examples=40, deadline=None)
@given(g=graphs(weighted=True))
def test_gr_roundtrip(g, tmp_path_factory):
    path = tmp_path_factory.mktemp("gr") / "g.gr"
    write_gr(g, path)
    assert read_gr(path) == g


@settings(max_examples=40, deadline=None)
@given(g=graphs())
def test_edgelist_roundtrip(g, tmp_path_factory):
    path = tmp_path_factory.mktemp("el") / "g.el"
    write_edgelist(g, path)
    assert read_edgelist(path, num_nodes=g.num_nodes) == g


@settings(max_examples=30, deadline=None)
@given(g=graphs(), data=st.data())
def test_gr_slice_matches_full_read(g, data, tmp_path_factory):
    path = tmp_path_factory.mktemp("slice") / "g.gr"
    write_gr(g, path)
    start = data.draw(st.integers(0, g.num_nodes))
    stop = data.draw(st.integers(start, g.num_nodes))
    _, indptr, indices, _ = read_gr_slice(path, start, stop)
    assert np.array_equal(indptr, g.indptr[start : stop + 1])
    lo, hi = g.indptr[start], g.indptr[stop]
    assert np.array_equal(indices, g.indices[lo:hi])


@settings(max_examples=60, deadline=None)
@given(graphs(), st.data())
def test_subgraph_rows_partition_of_edges(g, data):
    cut = data.draw(st.integers(0, g.num_nodes))
    left = g.subgraph_rows(0, cut)
    right = g.subgraph_rows(cut, g.num_nodes)
    assert left.num_edges + right.num_edges == g.num_edges


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_edge_sources_matches_indptr(g):
    src = g.edge_sources()
    for v in range(g.num_nodes):
        assert np.all(src[g.indptr[v] : g.indptr[v + 1]] == v)
