"""Tests for the trace/report rendering and the extended CLI options."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import CuSP, load_partitions
from repro.graph import erdos_renyi, get_dataset, write_gr
from repro.runtime import (
    SimulatedCluster,
    breakdown_to_json,
    render_breakdown,
    render_comparison,
)
from repro.runtime.trace import TRACE_SCHEMA_VERSION


@pytest.fixture(scope="module")
def breakdown():
    g = get_dataset("kron", "tiny")
    return CuSP(4, "CVC").partition(g).breakdown


class TestRenderBreakdown:
    def test_contains_phases_and_total(self, breakdown):
        text = render_breakdown(breakdown, title="T")
        assert text.startswith("T")
        assert "Graph Reading" in text
        assert "TOTAL" in text
        assert "#" in text  # bars present

    def test_empty_breakdown(self):
        c = SimulatedCluster(1)
        text = render_breakdown(c.breakdown())
        assert "no simulated time" in text

    def test_percentages_sum_roughly(self, breakdown):
        text = render_breakdown(breakdown)
        percents = [
            float(line.split("%")[0].split()[-1])
            for line in text.splitlines()
            if "%" in line
        ]
        assert abs(sum(percents) - 100.0) < 1.0


class TestRenderComparison:
    def test_two_runs(self, breakdown):
        text = render_comparison({"a": breakdown, "b": breakdown})
        assert "a" in text and "b" in text

    def test_phase_selector(self, breakdown):
        text = render_comparison({"x": breakdown}, phase="Graph Reading")
        assert "x" in text

    def test_empty(self):
        assert "nothing" in render_comparison({})

    def test_phase_missing_from_one_breakdown(self, breakdown):
        c = SimulatedCluster(2)
        with c.phase("warmup") as ph:
            ph.add_compute(0, 1.0)
        text = render_comparison(
            {"full": breakdown, "warmup-only": c.breakdown()},
            phase="Graph Reading",
        )
        assert "(phase not recorded)" in text
        assert "full" in text and "warmup-only" in text

    def test_phase_missing_from_every_breakdown(self, breakdown):
        text = render_comparison({"x": breakdown}, phase="no-such-phase")
        assert "(phase not recorded)" in text


class TestBreakdownJson:
    def test_roundtrip(self, breakdown):
        doc = json.loads(breakdown_to_json(breakdown, policy="CVC"))
        assert doc["policy"] == "CVC"
        assert len(doc["phases"]) == 5
        assert doc["total_s"] == pytest.approx(breakdown.total)
        for phase in doc["phases"]:
            assert set(phase) >= {"name", "total_s", "comm_bytes"}

    def test_schema_version_and_clean_run_markers(self, breakdown):
        doc = json.loads(breakdown_to_json(breakdown))
        assert doc["schema_version"] == TRACE_SCHEMA_VERSION
        assert doc["failed_phases"] == []
        assert all(phase["failed"] is False for phase in doc["phases"])

    def test_aborted_phase_is_marked(self):
        c = SimulatedCluster(2)
        with c.phase("ok-phase") as ph:
            ph.add_compute(0, 1.0)
        with pytest.raises(RuntimeError):
            with c.phase("doomed-phase") as ph:
                ph.add_compute(0, 1.0)
                raise RuntimeError("boom")
        doc = json.loads(breakdown_to_json(c.breakdown()))
        assert doc["failed_phases"] == ["doomed-phase"]
        by_name = {p["name"]: p for p in doc["phases"]}
        assert by_name["doomed-phase"]["failed"] is True
        assert by_name["ok-phase"]["failed"] is False


class TestCliExtensions:
    @pytest.fixture()
    def graph_file(self, tmp_path):
        path = tmp_path / "g.gr"
        write_gr(erdos_renyi(150, 1500, seed=4), path)
        return path

    def test_partition_save_and_reload(self, graph_file, tmp_path, capsys):
        out = tmp_path / "parts"
        assert main([
            "partition", str(graph_file), "-k", "4", "-p", "CVC",
            "--save", str(out),
        ]) == 0
        assert "partitions written" in capsys.readouterr().out
        loaded = load_partitions(out)
        assert loaded.num_partitions == 4

    def test_partition_trace(self, graph_file, capsys):
        assert main([
            "partition", str(graph_file), "-k", "2", "--trace",
        ]) == 0
        assert "#" in capsys.readouterr().out

    def test_partition_trace_json(self, graph_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main([
            "partition", str(graph_file), "-k", "2", "--trace-json", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert doc["num_partitions"] == 2

    def test_partition_window_policy(self, graph_file, capsys):
        assert main([
            "partition", str(graph_file), "-k", "2", "-p", "window:8",
        ]) == 0
        assert "size 8" in capsys.readouterr().out

    def test_partition_xtrapulp(self, graph_file, capsys):
        assert main([
            "partition", str(graph_file), "-k", "2", "-p", "xtrapulp",
        ]) == 0
        assert "XtraPulp" in capsys.readouterr().out

    def test_partition_multilevel(self, graph_file, capsys):
        assert main([
            "partition", str(graph_file), "-k", "2", "-p", "multilevel",
        ]) == 0
        out = capsys.readouterr().out
        assert "multilevel" in out
        assert "no simulated timing" in out
