"""Tests for the Metis-like multilevel baseline."""

import numpy as np
import pytest

from repro.baselines import MultilevelPartitioner, hash_partition
from repro.graph import CSRGraph, cycle_graph, erdos_renyi, get_dataset, grid_graph
from repro.metrics import cut_fraction


@pytest.fixture(scope="module")
def crawl():
    return get_dataset("kron", "tiny")


class TestCorrectness:
    def test_valid_partition(self, crawl):
        dg = MultilevelPartitioner(4).partition(crawl)
        dg.validate(crawl)
        assert dg.policy_name == "Multilevel"
        assert dg.invariant == "edge-cut"

    @pytest.mark.parametrize("k", [1, 2, 3, 6])
    def test_host_counts(self, k, crawl):
        dg = MultilevelPartitioner(k).partition(crawl)
        dg.validate(crawl)

    def test_single_partition(self, crawl):
        labels = MultilevelPartitioner(1).partition_labels(crawl)
        assert np.all(labels == 0)

    def test_empty_graph(self):
        g = CSRGraph.empty(10)
        dg = MultilevelPartitioner(2).partition(g)
        dg.validate(g)

    def test_zero_node_graph(self):
        labels = MultilevelPartitioner(2).partition_labels(CSRGraph.empty(0))
        assert labels.size == 0

    def test_deterministic(self, crawl):
        a = MultilevelPartitioner(4, seed=3).partition_labels(crawl)
        b = MultilevelPartitioner(4, seed=3).partition_labels(crawl)
        assert np.array_equal(a, b)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MultilevelPartitioner(0)
        with pytest.raises(ValueError):
            MultilevelPartitioner(2, imbalance=0.5)


class TestQuality:
    def test_grid_cut_far_better_than_hash(self):
        g = grid_graph(24, 24)
        ml = MultilevelPartitioner(4).partition(g)
        hp = hash_partition(g, 4)
        assert cut_fraction(g, ml.masters) < 0.3 * cut_fraction(g, hp.masters)

    def test_cycle_cut_is_tiny(self):
        g = cycle_graph(200).symmetrize()
        ml = MultilevelPartitioner(4).partition(g)
        # A cycle's optimal 4-way cut is 4 undirected edges (8 directed).
        src, dst = g.edges()
        cut_edges = int((ml.masters[src] != ml.masters[dst]).sum())
        assert cut_edges <= 24

    def test_balance_respected(self, crawl):
        dg = MultilevelPartitioner(4, imbalance=1.1).partition(crawl)
        assert dg.node_balance() <= 1.35  # slack for coarse granularity

    def test_beats_hash_on_powerlaw(self, crawl):
        ml = MultilevelPartitioner(4).partition(crawl)
        hp = hash_partition(crawl, 4)
        assert cut_fraction(crawl, ml.masters) < cut_fraction(crawl, hp.masters)

    def test_coarsening_reduces(self):
        # Internal sanity: matching on a dense graph should shrink it.
        from repro.baselines.multilevel import _heavy_edge_matching

        g = erdos_renyi(100, 2000, seed=5)
        src, dst = g.edges()
        w = np.ones(src.size, dtype=np.int64)
        mapping, coarse_n = _heavy_edge_matching(src, dst, w, 100, seed=0)
        assert coarse_n < 100
        assert mapping.min() >= 0 and mapping.max() == coarse_n - 1

    def test_merge_parallel(self):
        from repro.baselines.multilevel import _merge_parallel

        u = np.array([0, 0, 1], dtype=np.int64)
        v = np.array([1, 1, 2], dtype=np.int64)
        w = np.array([2, 3, 1], dtype=np.int64)
        mu, mv, mw = _merge_parallel(u, v, w, 3)
        assert mu.tolist() == [0, 1]
        assert mw.tolist() == [5, 1]


class TestAnalyticsIntegration:
    def test_bfs_on_multilevel_partitions(self, crawl):
        from repro.analytics import BFS, Engine, bfs_reference, default_source

        src = default_source(crawl)
        dg = MultilevelPartitioner(4).partition(crawl)
        res = Engine(dg).run(BFS(src))
        assert np.array_equal(res.values, bfs_reference(crawl, src))
