"""Tests for stream coalescing, async collectives, and transport presets."""

import numpy as np
import pytest

from repro.runtime import Communicator, CostModel, STAMPEDE2
from repro.runtime.cost_model import LCI_TRANSPORT, MPI_TRANSPORT, REPRO_CALIBRATED


class TestCoalescedStreams:
    def test_stream_counts_by_volume_not_calls(self):
        comm = Communicator(2, buffer_size=100)
        for _ in range(10):
            comm.send(0, 1, None, nbytes=30, coalesce=True)
        # 300 bytes over a 100-byte buffer = 3 messages, not 10.
        assert comm.total_messages() == 3
        assert comm.total_bytes() == 300

    def test_stream_unbuffered_counts_logical(self):
        comm = Communicator(2, buffer_size=0)
        for _ in range(5):
            comm.send(0, 1, None, nbytes=30, coalesce=True, logical_messages=2)
        assert comm.total_messages() == 10

    def test_stream_and_plain_sends_combine(self):
        comm = Communicator(2, buffer_size=1000)
        comm.send(0, 1, None, nbytes=10)  # plain: 1 message
        comm.send(0, 1, None, nbytes=10, coalesce=True)  # stream: ceil(10/1000)=1
        assert comm.total_messages() == 2

    def test_local_stream_free(self):
        comm = Communicator(2, buffer_size=10)
        comm.send(1, 1, None, nbytes=500, coalesce=True)
        assert comm.total_messages() == 0

    def test_host_messages_includes_streams(self):
        comm = Communicator(3, buffer_size=10)
        comm.send(0, 1, None, nbytes=25, coalesce=True)
        assert comm.host_messages(0) == 3
        assert comm.host_messages(1) == 0


class TestAsyncCollectives:
    def test_async_event_recorded(self):
        comm = Communicator(2)
        comm.allreduce_sum([np.zeros(4)] * 2, blocking=False)
        assert comm.collective_events[0][0] == "allreduce-async"

    def test_async_cheaper_than_blocking(self):
        m = STAMPEDE2
        blocking = m.allreduce_time(1024, 16, blocking=True)
        async_ = m.allreduce_time(1024, 16, blocking=False)
        assert async_ < blocking

    def test_async_still_charges_volume(self):
        m = CostModel(net_latency=0.0)
        small = m.allreduce_time(1024, 4, blocking=False)
        large = m.allreduce_time(1 << 20, 4, blocking=False)
        assert large > small

    def test_single_host_free(self):
        assert STAMPEDE2.allreduce_time(1024, 1, blocking=False) == 0.0


class TestTransportPresets:
    def test_lci_latency_lower(self):
        assert LCI_TRANSPORT.net_latency < MPI_TRANSPORT.net_latency
        assert LCI_TRANSPORT.barrier_latency < MPI_TRANSPORT.barrier_latency

    def test_same_bandwidth(self):
        assert LCI_TRANSPORT.net_bandwidth == MPI_TRANSPORT.net_bandwidth

    def test_mpi_is_repro_calibrated(self):
        assert MPI_TRANSPORT is REPRO_CALIBRATED

    def test_calibrated_latencies_below_stampede(self):
        assert REPRO_CALIBRATED.net_latency < STAMPEDE2.net_latency
        assert REPRO_CALIBRATED.barrier_latency < STAMPEDE2.barrier_latency
        assert REPRO_CALIBRATED.disk_read_bw < STAMPEDE2.disk_read_bw

    def test_presets_valid(self):
        for preset in (STAMPEDE2, REPRO_CALIBRATED, LCI_TRANSPORT):
            preset.validate()
