"""Tests for the simulated runtime: comm, cost model, cluster, stats."""

import numpy as np
import pytest

from repro.runtime import (
    Communicator,
    CostModel,
    STAMPEDE2,
    SimulatedCluster,
    payload_nbytes,
)


class TestPayloadSizing:
    def test_none(self):
        assert payload_nbytes(None) == 0

    def test_numpy(self):
        assert payload_nbytes(np.zeros(10, dtype=np.int64)) == 80

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4

    def test_containers(self):
        assert payload_nbytes([np.zeros(2, np.int64), 3]) == 24
        assert payload_nbytes((1, 2.0)) == 16
        assert payload_nbytes({1: np.zeros(1, np.int64)}) == 16

    def test_scalars_and_str(self):
        assert payload_nbytes(7) == 8
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes("ab") == 2

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            payload_nbytes(object())


class TestCommunicator:
    def test_send_recv_roundtrip(self):
        comm = Communicator(3)
        payload = np.arange(5)
        comm.send(0, 2, payload)
        received = comm.recv_all(2)
        assert len(received) == 1
        src, data = received[0]
        assert src == 0
        assert np.array_equal(data, payload)
        assert comm.recv_all(2) == []  # drained

    def test_tags_are_independent(self):
        comm = Communicator(2)
        comm.send(0, 1, 1, tag="a")
        comm.send(0, 1, 2, tag="b")
        assert comm.recv_all(1, tag="a") == [(0, 1)]
        assert comm.recv_all(1, tag="b") == [(0, 2)]

    def test_byte_accounting(self):
        comm = Communicator(2)
        comm.send(0, 1, np.zeros(4, dtype=np.int64))
        assert comm.total_bytes() == 32
        assert comm.host_sent(0) == 32
        assert comm.host_received(1) == 32

    def test_local_send_is_free(self):
        comm = Communicator(2)
        comm.send(1, 1, np.zeros(100, dtype=np.int64))
        assert comm.total_bytes() == 0
        assert comm.total_messages() == 0
        assert len(comm.recv_all(1)) == 1  # still delivered

    def test_nbytes_override(self):
        comm = Communicator(2)
        comm.send(0, 1, np.zeros(100, np.int64), nbytes=8)
        assert comm.total_bytes() == 8

    def test_buffered_message_count(self):
        comm = Communicator(2, buffer_size=100)
        comm.send(0, 1, np.zeros(40, dtype=np.int64))  # 320 bytes
        assert comm.total_messages() == 4  # ceil(320/100)

    def test_unbuffered_uses_logical_messages(self):
        comm = Communicator(2, buffer_size=0)
        comm.send(0, 1, np.zeros(40, dtype=np.int64), logical_messages=25)
        assert comm.total_messages() == 25

    def test_buffered_minimum_one_message(self):
        comm = Communicator(2, buffer_size=1 << 20)
        comm.send(0, 1, np.zeros(1, dtype=np.int64))
        assert comm.total_messages() == 1

    def test_pending(self):
        comm = Communicator(2)
        assert comm.pending(1) == 0
        comm.send(0, 1, 42)
        assert comm.pending(1) == 1

    def test_invalid_host(self):
        comm = Communicator(2)
        with pytest.raises(ValueError):
            comm.send(0, 5, 1)
        with pytest.raises(ValueError):
            comm.recv_all(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Communicator(0)
        with pytest.raises(ValueError):
            Communicator(2, buffer_size=-1)

    def test_allreduce_sum(self):
        comm = Communicator(3)
        out = comm.allreduce_sum([np.ones(4)] * 3)
        assert np.array_equal(out, np.full(4, 3.0))
        assert comm.collective_events == [("allreduce", 32.0)]

    def test_allreduce_max(self):
        comm = Communicator(2)
        out = comm.allreduce_max([np.array([1, 5]), np.array([3, 2])])
        assert out.tolist() == [3, 5]

    def test_allreduce_wrong_count(self):
        comm = Communicator(3)
        with pytest.raises(ValueError):
            comm.allreduce_sum([np.ones(1)] * 2)

    def test_allgather(self):
        comm = Communicator(2)
        assert comm.allgather([1, 2]) == [1, 2]
        assert comm.collective_events[0][0] == "allgather"

    def test_partners(self):
        comm = Communicator(4)
        comm.send(0, 1, np.ones(1))
        comm.send(2, 0, np.ones(1))
        assert comm.partners(0) == 2  # talks to 1 and 2
        assert comm.partners(3) == 0

    def test_barrier_counted(self):
        comm = Communicator(2)
        comm.barrier()
        comm.barrier()
        assert comm.barriers == 2


class TestCostModel:
    def test_defaults_valid(self):
        STAMPEDE2.validate()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CostModel(disk_read_bw=0).validate()
        with pytest.raises(ValueError):
            CostModel(net_latency=-1).validate()

    def test_disk_time_uncapped(self):
        m = CostModel(disk_read_bw=100, disk_aggregate_bw=1e12)
        assert m.disk_time([200, 100]) == [2.0, 1.0]

    def test_disk_time_aggregate_cap(self):
        # 4 hosts at 100 B/s each would demand 400, cap is 200 -> each gets 50
        m = CostModel(disk_read_bw=100, disk_aggregate_bw=200)
        times = m.disk_time([100, 100, 100, 100])
        assert times == [2.0] * 4

    def test_compute_time(self):
        m = CostModel(compute_rate=1000)
        assert m.compute_time(500) == 0.5

    def test_comm_time_overlaps_send_recv(self):
        m = CostModel(net_bandwidth=100, net_latency=0.0)
        assert m.comm_time(send_bytes=200, recv_bytes=50, messages=0) == 2.0
        assert m.comm_time(send_bytes=50, recv_bytes=200, messages=0) == 2.0

    def test_comm_time_latency(self):
        m = CostModel(net_bandwidth=1e12, net_latency=0.001)
        assert m.comm_time(0, 0, messages=10) == pytest.approx(0.01)

    def test_allreduce_time_zero_cases(self):
        assert STAMPEDE2.allreduce_time(100, 1) == 0.0
        assert STAMPEDE2.allreduce_time(0, 8) == 0.0

    def test_allreduce_scales_with_hosts(self):
        t2 = STAMPEDE2.allreduce_time(1000, 2)
        t16 = STAMPEDE2.allreduce_time(1000, 16)
        assert t16 > t2

    def test_scaled(self):
        m = STAMPEDE2.scaled(net_latency=1e-3)
        assert m.net_latency == 1e-3
        assert m.disk_read_bw == STAMPEDE2.disk_read_bw
        with pytest.raises(ValueError):
            STAMPEDE2.scaled(compute_rate=-5)


class TestCluster:
    def test_phase_records(self):
        c = SimulatedCluster(2)
        with c.phase("reading") as ph:
            ph.add_disk(0, 1000)
            ph.add_compute(1, 500)
        assert len(c.phase_stats) == 1
        assert c.phase_stats[0].name == "reading"

    def test_breakdown_total_positive(self):
        c = SimulatedCluster(2)
        with c.phase("a") as ph:
            ph.add_disk(0, 1e9)
        with c.phase("b") as ph:
            ph.comm.send(0, 1, np.zeros(1000, np.int64))
        bd = c.breakdown()
        assert bd.total > 0
        assert set(bd.by_phase()) == {"a", "b"}
        assert bd.phase("a").disk > 0

    def test_breakdown_slowest_host_dominates(self):
        m = CostModel(disk_read_bw=100, disk_aggregate_bw=1e12)
        c = SimulatedCluster(2, cost_model=m)
        with c.phase("read") as ph:
            ph.add_disk(0, 100)   # 1 s
            ph.add_disk(1, 1000)  # 10 s
        assert c.breakdown().phase("read").total == pytest.approx(10.0)

    def test_unknown_phase_lookup(self):
        c = SimulatedCluster(1)
        with pytest.raises(KeyError):
            c.breakdown().phase("nope")

    def test_comm_bytes_query(self):
        c = SimulatedCluster(2)
        with c.phase("x") as ph:
            ph.comm.send(0, 1, np.zeros(4, np.int64))
        assert c.breakdown().comm_bytes("x") == 32
        assert c.breakdown().comm_bytes() == 32

    def test_reset(self):
        c = SimulatedCluster(1)
        with c.phase("x"):
            pass
        c.reset()
        assert c.phase_stats == []

    def test_invalid_cluster(self):
        with pytest.raises(ValueError):
            SimulatedCluster(0)

    def test_buffer_size_propagates(self):
        c = SimulatedCluster(2, buffer_size=64)
        with c.phase("x") as ph:
            assert ph.comm.buffer_size == 64

    def test_collective_time_in_report(self):
        c = SimulatedCluster(4)
        with c.phase("sync") as ph:
            ph.comm.allreduce_sum([np.zeros(1000)] * 4)
            ph.comm.barrier()
        rep = c.breakdown().phase("sync")
        assert rep.collective > 0

    def test_smaller_buffer_more_messages_more_time(self):
        def run(buf):
            c = SimulatedCluster(2, buffer_size=buf,
                                 cost_model=STAMPEDE2.scaled(net_latency=1e-3))
            with c.phase("send") as ph:
                ph.comm.send(0, 1, np.zeros(1_000_000, np.int64),
                             logical_messages=100_000)
            return c.total_time()

        assert run(0) > run(1024) > run(1 << 20)
