"""Corpus: task bodies mutating captured state (rule: unshippable-task-capture)."""

from repro.runtime.executor import HostTask


def make_tasks(num_hosts, totals, registry):
    def body(view):
        # A forked worker's write to the captured list dies with the
        # worker: serial and process runs silently diverge.
        totals[view.host] = view.host * 2
        registry.count += 1  # captured attribute store: same problem
        local = {}
        local["ok"] = 1  # body-created: fine
        return local

    return [HostTask(h, body) for h in range(num_hosts)]
