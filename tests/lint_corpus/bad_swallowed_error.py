"""Corpus: except bodies that drop the exception (rule: swallowed-error)."""


class CheckpointCorruptionError(RuntimeError):
    pass


def load_or_nothing(checkpoint, stage):
    try:
        return checkpoint.load(stage)
    except CheckpointCorruptionError:  # a torn write vanishes here
        pass


def best_effort(fn):
    try:
        fn()
    except Exception:
        pass


def really_anything(fn):
    try:
        fn()
    except:  # noqa: E722
        ...


def narrow_but_silent(mapping, key):
    try:
        return mapping[key]
    except KeyError:  # warning: narrow, but still silent
        pass


def handled_is_fine(fn, log):
    # Not flagged: the handler actually does something with the failure.
    try:
        fn()
    except ValueError as exc:
        log.append(str(exc))
