"""Corpus: wall-clock reads (rule: wall-clock)."""

import time
from datetime import datetime


def stamp_phase():
    start = time.perf_counter()  # simulated time must come from the model
    worked = time.time() - start
    return datetime.now(), worked


def monotonic_budget():
    return time.monotonic_ns()
