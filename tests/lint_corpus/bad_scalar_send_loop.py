"""Corpus: per-element sends in a phase loop (rule: scalar-send-in-hot-loop)."""

__phase_contract__ = "Master Assignment"


def ship(view, peers, ids, masters):
    for j in peers:
        # One scalar send per peer in a governed phase module: flagged.
        view.send(j, (ids[j], masters[ids[j]]), tag="master-assignments",
                  nbytes=12 * len(ids[j]))


def drain(view, pending):
    while pending:
        j = pending.pop()
        # Loop shape does not matter; while-loops are flagged too.
        view.send(j, None, tag="master-assignments", nbytes=12)
