"""Unseeded RNG laundered through a seed-forwarding wrapper stack.

Shallow false negative by construction: every ``default_rng(seed)``
call in this file passes a variable, which the shallow
``unseeded-rng`` rule accepts.  But the seed parameter defaults to
``None`` at each layer, and the top call site omits it — so the
generator is entropy-seeded after all.  The deep
``deep-unseeded-rng`` pass threads the parameter interprocedurally
and must flag the deciding call with the full wrapper chain.
"""

from numpy.random import default_rng


def fresh_rng(seed=None):
    return default_rng(seed)


def jitter(count, seed=None):
    rng = fresh_rng(seed)
    return rng.permutation(count)


def shuffle_candidates(candidates):
    order = jitter(len(candidates))
    return [candidates[i] for i in order]
