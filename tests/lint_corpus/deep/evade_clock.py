"""Wall-clock nondeterminism laundered through a helper chain.

Shallow false negative by construction: this file contains no clock
call — the read hides in ``bench_util.now_ms`` (a path the shallow
``wall-clock`` rule exempts wholesale), and only the *value* travels
back through ``elapsed_stamp`` into a HostTask result.  The deep
``deep-determinism-taint`` pass must flag the task registration with
a value path naming every hop.
"""

import bench_util

from repro.runtime.executor import HostTask


def elapsed_stamp() -> float:
    return bench_util.now_ms()


def run_phase(hosts):
    def body(view):
        stamp = elapsed_stamp()
        return stamp

    return [HostTask(h, body, label="stamp") for h in hosts]
