"""Communicator access laundered through a helper call.

Shallow false negative by construction: the shallow ``comm-in-task``
rule only inspects the HostTask body itself, and the body below is
squeaky clean — it merely calls ``poke_peers``, which is where the
``.comm`` access and the phase-global collective actually live.  The
deep ``deep-comm-in-task`` pass must follow the call edge and flag
the access with a chain naming body and helper.
"""

from repro.runtime.executor import HostTask


def poke_peers(ctx, h):
    ctx.comm.allreduce_sum(h)


def run_phase(ctx, hosts):
    def body(view):
        poke_peers(ctx, 1)
        return None

    return [HostTask(h, body, label="poke") for h in hosts]
