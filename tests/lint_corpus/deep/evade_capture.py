"""Captured-state mutation laundered through a helper.

Shallow false negative by construction: the shallow
``unshippable-task-capture`` rule only sees writes *in the body*, and
the body below writes nothing — it hands the captured ``tallies``
dict to ``record_result``, which performs the write through its
parameter.  Under a forked process executor that write lands in the
worker's copy and silently dies with it.  The deep
``deep-unshippable-task-capture`` pass must follow the argument into
the helper and flag the write with the full chain.
"""

from repro.runtime.executor import HostTask


def record_result(acc, h, value):
    acc[h] = value


def run_phase(hosts):
    tallies = {}

    def body(view):
        value = 2
        record_result(tallies, 0, value)
        return value

    return [HostTask(h, body, label="tally") for h in hosts]
