"""An unshippable HostTask payload hidden behind a constructor.

Shallow false negative by construction: no shallow rule reasons about
payload values at all, and nothing here *looks* wrong at the call
site — the payload is just ``make_channel()``.  But the factory
returns a ``Channel`` whose ``__init__`` stores a ``threading.Lock``,
which cannot cross the process boundary to a forked worker.  The deep
``deep-unshippable-payload`` pass must evaluate the payload's value
tree through the factory and the constructor and flag the lock.
"""

import threading

from repro.runtime.executor import HostTask


class Channel:
    def __init__(self, capacity=4):
        self.capacity = capacity
        self._lock = threading.Lock()
        self.slots = []


def make_channel():
    return Channel()


def run_phase(hosts):
    def body(view, payload):
        return payload

    return [
        HostTask(h, body, payload=make_channel(), label="channel")
        for h in hosts
    ]
