"""Benchmark-flavoured helper module (evasion accomplice).

The wall-clock read lives *here* because the shallow ``wall-clock``
rule exempts ``bench*`` paths — a file-level blind spot.  The deep
taint analysis does not care where the read happens: it follows the
returned value across module boundaries into whatever consumes it
(see ``evade_clock.py``).
"""

import time


def now_ms() -> float:
    return time.time() * 1000.0
