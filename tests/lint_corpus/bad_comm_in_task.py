"""Corpus: shared Communicator use inside a HostTask body (rule: comm-in-task)."""

from repro.runtime.executor import HostTask


def make_tasks(phase, num_hosts):
    def body(view):
        # Both lines bypass the private ledger: the shared communicator
        # must not be touched while mapped tasks run concurrently.
        phase.comm.send(view.host, 0, b"x", tag="t", nbytes=8)
        phase.comm.barrier()

    return [HostTask(h, body) for h in range(num_hosts)]
