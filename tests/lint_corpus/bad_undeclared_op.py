"""Corpus: comm ops outside the declared contract (rule: contract-undeclared-op)."""

__phase_contract__ = "Master Assignment"


def ship(view, peers):
    for j in peers:
        # Declared by the Master Assignment contract: passes.
        view.send(j, None, tag="master-assignments", nbytes=12)
        # Not declared anywhere: flagged.
        view.send(j, None, tag="gossip", nbytes=16)


def settle(phase, contributions):
    # The Master Assignment contract declares no allgather clause.
    phase.comm.allgather(contributions)
