"""Corpus: direct mutation of comm accounting state (rule: ledger-bypass)."""


def cook_counters(comm):
    comm.sent_bytes[0, 1] += 64.0  # accounting writes belong to the comm layer
    comm.sent_messages[0, 1] = 2.0
    comm.collective_events.append(("allreduce", 8.0))


def fake_retry(comm):
    comm.retry_messages[2, 3] += 1.0
