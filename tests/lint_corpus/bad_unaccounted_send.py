"""Corpus: sends whose traffic the accounting never sees (rule: unaccounted-send)."""


def notify(view, peers):
    for j in peers:
        view.send(j, None, tag="empty")  # payload_nbytes(None) == 0


def free_lunch(view):
    view.send(0, b"metadata", tag="meta", nbytes=0)
