"""Corpus: cross-host writes from a mapped task (rule: cross-host-write)."""

from repro.runtime.executor import HostTask


def make_tasks(num_hosts, results):
    def body(view):
        for j in range(num_hosts):
            results[j] = view.host  # writes every host's slot, not just its own

    return [HostTask(h, body) for h in range(num_hosts)]
