"""Corpus: dict insertion order driving sends (rule: unordered-dict-send)."""


def ship_batches(view, batches):
    # Filled from received messages: insertion order is host-dependent.
    pending = {}
    for dst, payload in batches:
        pending.setdefault(dst, []).append(payload)
    for dst, items in pending.items():  # dict order reaches the wire
        view.send(dst, "edge-counts", items, nbytes=8 * len(items))


def ship_views(view, sizes):
    queue = dict(sizes)
    for dst in queue:  # bare dict iteration, same hazard
        view.send_batch(dst, "edges", queue[dst])
    for dst in queue.keys():
        view.send(dst, "meta", queue[dst], nbytes=8)


def ship_sorted(view, pending):
    # The deterministic idiom: sorted(...) breaks the insertion-order
    # dependence, so none of these may be flagged.
    for dst, items in sorted(pending.items()):
        view.send(dst, "edge-counts", items, nbytes=8 * len(items))
    summary = {}
    for dst in summary:  # no send inside: summaries may keep dict order
        print(dst)
