"""Corpus: order-sensitive iteration over sets (rule: unordered-iteration)."""


def visit_owners(edges):
    hosts = {h for _, h in edges}
    order = []
    for h in hosts:  # set iteration order is arbitrary across runs
        order.append(h)
    return order


def literal_and_consumer():
    listed = list({3, 1, 2})  # order consumer over a set literal
    doubled = [x * 2 for x in {1, 2, 3}]
    return listed, doubled


def via_variable(a, b):
    pending = set(a) | set(b)
    return [x for x in pending]


class FaultTracker:
    """Set-typed ``self`` attributes carry the same hazard."""

    def __init__(self):
        self._fired = set()
        self._skipped = {"warm"}

    def record(self, host):
        self._fired.add(host)

    def snapshot(self):
        return list(self._fired)  # set order leaks through the attr

    def walk(self):
        for host in self._skipped:  # iterating a set-typed attr
            yield host
