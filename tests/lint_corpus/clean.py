"""Corpus control: determinism-respecting near-misses no rule may flag."""

import numpy as np

from repro.runtime.executor import HostTask


def seeded(seed):
    rng = np.random.default_rng(seed)  # seed injected: deterministic
    return rng.random()


def ordered(edges):
    hosts = {h for _, h in edges}
    return [h for h in sorted(hosts)]  # sorted() fixes the order


def membership_only(edges, h):
    seen = {a for a, _ in edges}
    return h in seen  # set used for membership, never iterated


def sorted_dict_send(view, pending):
    for dst, items in sorted(pending.items()):  # sorted() fixes the order
        view.send(dst, items, tag="batch", nbytes=8 * len(items))


def dict_no_send(counts):
    total = {}
    for dst, n in counts.items():  # no send inside: insertion order is fine
        total[dst] = n * 2
    return total


class OrderedTracker:
    """Set-typed attrs are fine when consumed through sorted()."""

    def __init__(self):
        self._fired = set()

    def snapshot(self):
        return sorted(self._fired)

    def contains(self, host):
        return host in self._fired  # membership, never iterated


def make_task(h, out, num_hosts):
    def body(view):
        scratch = np.zeros(num_hosts)
        scratch[h] = view.host  # body-created scratch, not captured state
        view.send((h + 1) % num_hosts, b"payload", tag="t", nbytes=8)
        view.send((h + 2) % num_hosts, None, tag="empty", nbytes=8)
        view.add_compute(1.0)
        return view.recv_all(tag="t")

    def install(result):
        out[h] = result  # apply runs in the parent: captured writes are fine
        return result

    return HostTask(h, body, label="clean", apply=install)
