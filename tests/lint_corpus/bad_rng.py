"""Corpus: unseeded randomness (rule: unseeded-rng)."""

import random

import numpy as np


def shuffle_hosts(hosts):
    random.shuffle(hosts)  # global stdlib RNG: seed set elsewhere, or never
    return hosts


def noise():
    rng = np.random.default_rng()  # unseeded generator
    legacy = np.random.rand()  # legacy global numpy RNG
    return rng.random() + legacy + random.random()


def fresh_rng():
    return random.Random()  # no-arg Random(): seeded from the OS
