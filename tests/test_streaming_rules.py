"""Tests for the Table I streaming vertex-cuts (PowerGraph greedy, HDRF)."""

import numpy as np
import pytest

from repro.core import CuSP, GreedyVertexCut, HDRFRule, ReplicationState, make_policy
from repro.graph import CSRGraph, get_dataset, star_graph
from repro.runtime import Communicator


@pytest.fixture(scope="module")
def crawl():
    return get_dataset("kron", "tiny")


class TestReplicationState:
    def test_local_visibility(self):
        s = ReplicationState(num_partitions=3, num_hosts=2, num_nodes=5)
        v0, v1 = s.host_view(0), s.host_view(1)
        v0.place(1, src=0, dst=2)
        assert v0.replicas_of(0)[1]
        assert not v1.replicas_of(0)[1]  # not yet synced
        assert v0.load.tolist() == [0, 1, 0]
        assert v0.degree(0) == 1 and v0.degree(2) == 1

    def test_sync_round_merges(self):
        s = ReplicationState(2, 2, 4)
        s.host_view(0).place(0, 1, 2)
        s.host_view(1).place(1, 2, 3)
        comm = Communicator(2)
        s.sync_round(comm)
        for h in range(2):
            view = s.host_view(h)
            assert view.replicas_of(2)[0] and view.replicas_of(2)[1]
            assert view.load.tolist() == [1, 1]
        assert len(comm.collective_events) == 1

    def test_reset(self):
        s = ReplicationState(2, 1, 3)
        s.host_view(0).place(0, 0, 1)
        s.sync_round(Communicator(1))
        s.reset()
        assert s.host_view(0).load.tolist() == [0, 0]
        assert not s.host_view(0).replicas_of(0).any()

    def test_invalid(self):
        with pytest.raises(ValueError):
            ReplicationState(0, 1, 1)
        with pytest.raises(ValueError):
            ReplicationState(2, 2, 3).host_view(9)


class TestGreedyVertexCut:
    def test_requires_state(self):
        rule = GreedyVertexCut()
        with pytest.raises(ValueError):
            rule.owner(None, 0, 1, 0, 0, estate=None)
        with pytest.raises(ValueError):
            rule.make_state(2, 2)  # num_nodes missing

    def test_prefers_shared_partition(self):
        rule = GreedyVertexCut()
        state = rule.make_state(3, 1, num_nodes=4)
        view = state.host_view(0)
        view.place(2, 0, 1)
        # Edge (0, 1): both endpoints on partition 2 already.
        assert rule.owner(None, 0, 1, 0, 0, view) == 2

    def test_follows_single_placed_endpoint(self):
        rule = GreedyVertexCut()
        state = rule.make_state(3, 1, num_nodes=4)
        view = state.host_view(0)
        view.place(1, 0, 2)
        # Edge (0, 3): only src placed (partition 1).
        assert rule.owner(None, 0, 3, 0, 0, view) == 1

    def test_balance_cap_prevents_collapse(self, crawl):
        dg = CuSP(4, "PGC").partition(crawl)
        dg.validate(crawl)
        assert dg.edge_balance() < 1.4

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            GreedyVertexCut(balance_cap=0.5)


class TestHDRF:
    def test_requires_state(self):
        with pytest.raises(ValueError):
            HDRFRule().owner(None, 0, 1, 0, 0, estate=None)
        with pytest.raises(ValueError):
            HDRFRule(balance_lambda=-1)

    def test_high_degree_endpoint_gets_replicated(self):
        """HDRF's defining property: when forced to replicate, the
        higher-partial-degree endpoint is the one that spreads."""
        rule = HDRFRule(balance_lambda=0.1)
        state = rule.make_state(2, 1, num_nodes=10)
        view = state.host_view(0)
        # Build up: vertex 0 is a hub on partition 0; vertex 5 low-degree
        # on partition 1.
        for d in (1, 2, 3):
            view.place(0, 0, d)
        view.place(1, 5, 6)
        # Edge (0, 5): g(5) > g(0) because 5 has lower degree; partition 1
        # (holding 5) should win despite 0's hub presence on partition 0.
        assert rule.owner(None, 0, 5, 0, 0, view) == 1

    def test_balanced_partitions(self, crawl):
        dg = CuSP(4, "HDRF").partition(crawl)
        dg.validate(crawl)
        assert dg.edge_balance() < 1.2

    def test_lambda_tradeoff(self, crawl):
        """Lower lambda trades balance for replication."""
        lo = CuSP(4, make_policy("HDRF")).partition(crawl)
        # Build a low-lambda variant manually.
        from repro.core import ContiguousEB, Policy

        soft = Policy("HDRF-soft", ContiguousEB(), HDRFRule(balance_lambda=0.5))
        hi = CuSP(4, soft).partition(crawl)
        hi.validate(crawl)
        assert hi.replication_factor() <= lo.replication_factor()


class TestPolicyIntegration:
    @pytest.mark.parametrize("policy", ["PGC", "HDRF"])
    def test_valid_partitions(self, policy, crawl):
        dg = CuSP(4, policy).partition(crawl)
        dg.validate(crawl)
        assert dg.invariant == "vertex-cut"

    @pytest.mark.parametrize("policy", ["PGC", "HDRF"])
    def test_deterministic(self, policy, crawl):
        a = CuSP(4, policy).partition(crawl)
        b = CuSP(4, policy).partition(crawl)
        assert np.array_equal(a.masters, b.masters)
        for pa, pb in zip(a.partitions, b.partitions):
            assert pa.local_graph == pb.local_graph

    def test_analytics_on_hdrf_partitions(self, crawl):
        from repro.analytics import BFS, Engine, bfs_reference, default_source

        src = default_source(crawl)
        dg = CuSP(4, "HDRF").partition(crawl)
        res = Engine(dg).run(BFS(src))
        assert np.array_equal(res.values, bfs_reference(crawl, src))

    def test_estate_sync_counted(self, crawl):
        dg = CuSP(4, "HDRF").partition(crawl)
        phase = dg.breakdown.phase("Edge Assignment")
        assert phase.collective > 0  # per-host estate reconciliation

    def test_hub_graph(self):
        g = star_graph(100)
        dg = CuSP(4, "HDRF").partition(g)
        dg.validate(g)


class TestHDRFChunked:
    """The chunked batch path (intra-chunk staleness, §IV-D4 semantics)."""

    def test_chunk_one_equals_scalar(self, crawl):
        from repro.core import ContiguousEB, Policy

        exact = CuSP(4, Policy("a", ContiguousEB(),
                               HDRFRule(chunk_size=1))).partition(crawl)
        scalar_like = CuSP(4, Policy("b", ContiguousEB(),
                                     HDRFRule(chunk_size=1))).partition(crawl)
        assert np.array_equal(exact.masters, scalar_like.masters)
        for pa, pb in zip(exact.partitions, scalar_like.partitions):
            assert pa.local_graph == pb.local_graph

    def test_chunked_valid_and_balanced(self, crawl):
        from repro.core import ContiguousEB, Policy

        dg = CuSP(4, Policy("c", ContiguousEB(),
                            HDRFRule(chunk_size=512))).partition(crawl)
        dg.validate(crawl)
        assert dg.edge_balance() < 1.25

    def test_chunked_deterministic(self, crawl):
        a = CuSP(4, "HDRF").partition(crawl)
        b = CuSP(4, "HDRF").partition(crawl)
        assert np.array_equal(a.masters, b.masters)
        for pa, pb in zip(a.partitions, b.partitions):
            assert pa.local_graph == pb.local_graph

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            HDRFRule(chunk_size=0)

    def test_state_consistent_after_batch(self):
        from repro.core import GraphProp
        from repro.graph import erdos_renyi

        g = erdos_renyi(50, 400, seed=21)
        prop = GraphProp(g, 4)
        rule = HDRFRule(chunk_size=64)
        state = rule.make_state(4, 1, num_nodes=50)
        view = state.host_view(0)
        src, dst = g.edges()
        owners = rule.owner_batch(prop, src, dst,
                                  np.zeros_like(src, dtype=np.int32),
                                  np.zeros_like(dst, dtype=np.int32), view)
        # Every edge placed exactly once: loads sum to the edge count.
        assert int(view.load.sum()) == g.num_edges
        assert owners.min() >= 0 and owners.max() < 4
