"""Tests for delta-stepping SSSP and the engine's quiescence hook."""

import numpy as np
import pytest

from repro.analytics import (
    DeltaSteppingSSSP,
    Engine,
    SSSP,
    default_source,
    sssp_reference,
)
from repro.core import CuSP
from repro.graph import CSRGraph, erdos_renyi, get_dataset, path_graph


@pytest.fixture(scope="module")
def weighted():
    return get_dataset("kron", "tiny").with_random_weights(seed=9)


class TestCorrectness:
    @pytest.mark.parametrize("delta", [1, 4, 32, 10**9])
    def test_exact_for_any_delta(self, delta, weighted):
        src = default_source(weighted)
        dg = CuSP(4, "CVC").partition(weighted)
        res = Engine(dg).run(DeltaSteppingSSSP(src, delta=delta))
        assert np.array_equal(res.values, sssp_reference(weighted, src))

    @pytest.mark.parametrize("policy", ["EEC", "HVC", "SVC"])
    def test_across_policies(self, policy, weighted):
        src = default_source(weighted)
        dg = CuSP(4, policy, sync_rounds=2).partition(weighted)
        res = Engine(dg).run(DeltaSteppingSSSP(src, delta=16))
        assert np.array_equal(res.values, sssp_reference(weighted, src))

    def test_matches_bellman_ford(self, weighted):
        src = default_source(weighted)
        dg = CuSP(3, "EEC").partition(weighted)
        engine = Engine(dg)
        a = engine.run(SSSP(src))
        b = engine.run(DeltaSteppingSSSP(src, delta=8))
        assert np.array_equal(a.values, b.values)

    def test_weighted_path(self):
        g = path_graph(10).with_uniform_weights(7)
        dg = CuSP(2, "EEC").partition(g)
        res = Engine(dg).run(DeltaSteppingSSSP(0, delta=5))
        assert res.values.tolist() == [7 * i for i in range(10)]

    def test_unreachable_stays_inf(self):
        g = CSRGraph.from_edges([0], [1], num_nodes=4,
                                edge_data=[3]).with_uniform_weights(3)
        dg = CuSP(2, "EEC").partition(g)
        res = Engine(dg).run(DeltaSteppingSSSP(0, delta=2))
        assert res.values[1] == 3
        assert res.values[2] == res.values[3]


class TestScheduling:
    def test_buckets_processed_counted(self, weighted):
        src = default_source(weighted)
        dg = CuSP(2, "EEC").partition(weighted)
        app = DeltaSteppingSSSP(src, delta=8)
        Engine(dg).run(app)
        assert app.buckets_processed >= 2

    def test_huge_delta_single_bucket(self, weighted):
        """delta -> infinity degenerates to Bellman-Ford: one bucket."""
        src = default_source(weighted)
        dg = CuSP(2, "EEC").partition(weighted)
        app = DeltaSteppingSSSP(src, delta=10**9)
        res = Engine(dg).run(app)
        assert app.buckets_processed == 1
        bf = Engine(dg).run(SSSP(src))
        assert res.rounds == bf.rounds  # identical schedule

    def test_small_delta_reduces_rerelaxations(self):
        """With a wide weight spread, bucketing avoids relaxing far
        vertices with provisional distances that will improve anyway:
        total reduce traffic shrinks even though rounds grow."""
        g = erdos_renyi(300, 3000, seed=41).with_random_weights(1, 1000, seed=41)
        src = 0
        dg = CuSP(4, "HVC").partition(g)
        engine = Engine(dg)
        bf = engine.run(SSSP(src))
        ds = engine.run(DeltaSteppingSSSP(src, delta=200))
        assert np.array_equal(bf.values, ds.values)
        assert ds.rounds >= bf.rounds  # more, finer-grained rounds
        assert ds.comm_bytes <= bf.comm_bytes * 1.5  # but not a blowup

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            DeltaSteppingSSSP(0, delta=0)
