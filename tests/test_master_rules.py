"""Tests for getMaster rules (paper Algorithm 1)."""

import numpy as np
import pytest

from repro.core import (
    Contiguous,
    ContiguousEB,
    Fennel,
    FennelEB,
    GraphProp,
    make_master_rule,
)
from repro.graph import CSRGraph, erdos_renyi, star_graph


def prop_for(graph, k):
    return GraphProp(graph, k)


class TestContiguous:
    def test_blocks(self):
        g = CSRGraph.empty(10)
        p = prop_for(g, 3)  # blocksize = ceil(10/3) = 4
        rule = Contiguous()
        got = [rule.assign(p, v, None) for v in range(10)]
        assert got == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]

    def test_batch_matches_scalar(self):
        g = erdos_renyi(50, 200, seed=1)
        p = prop_for(g, 4)
        rule = Contiguous()
        ids = np.arange(50)
        batch = rule.assign_batch(p, ids, None)
        scalar = [rule.assign(p, int(v), None) for v in ids]
        assert batch.tolist() == scalar

    def test_pure(self):
        assert Contiguous().is_pure


class TestContiguousEB:
    def test_balances_edges_not_nodes(self):
        # star: node 0 has all 9 edges; EB puts node 0 alone-ish.
        g = star_graph(9)
        p = prop_for(g, 2)
        rule = ContiguousEB()
        got = rule.assign_batch(p, np.arange(10), None)
        # edge block = ceil(10/2) = 5; node 0 first edge 0 -> partition 0;
        # all leaves have first edge id 9 -> partition 1.
        assert got[0] == 0
        assert set(got[1:].tolist()) == {1}

    def test_batch_matches_scalar(self):
        g = erdos_renyi(30, 300, seed=2)
        p = prop_for(g, 3)
        rule = ContiguousEB()
        ids = np.arange(30)
        assert rule.assign_batch(p, ids, None).tolist() == [
            rule.assign(p, int(v), None) for v in ids
        ]

    def test_roughly_equal_edge_loads(self):
        g = erdos_renyi(200, 4000, seed=3)
        p = prop_for(g, 4)
        rule = ContiguousEB()
        parts = rule.assign_batch(p, np.arange(200), None)
        loads = np.zeros(4)
        np.add.at(loads, parts, g.out_degree())
        assert loads.max() <= 1.3 * loads.mean()

    def test_pure(self):
        assert ContiguousEB().is_pure


class TestFennel:
    def make(self, n=40, m=300, k=4, seed=5):
        g = erdos_renyi(n, m, seed=seed)
        p = prop_for(g, k)
        rule = Fennel()
        state = rule.make_state(k, 1)
        return g, p, rule, state

    def test_not_pure(self):
        rule = Fennel()
        assert rule.uses_masters and rule.stateful and not rule.is_pure

    def test_assign_updates_state(self):
        g, p, rule, state = self.make()
        view = state.host_view(0)
        masters = np.full(g.num_nodes, -1, dtype=np.int32)
        part = rule.assign(p, 0, view, masters)
        assert 0 <= part < 4
        assert view.numNodes.sum() == 1

    def test_load_balancing_pressure(self):
        # With no neighbor information (masters=None), only the load
        # penalty acts and Fennel must spread nodes across partitions
        # round-robin rather than piling onto one.
        g, p, rule, state = self.make(n=100, m=400, k=4)
        view = state.host_view(0)
        placed = np.empty(100, dtype=np.int32)
        for v in range(100):
            placed[v] = rule.assign(p, v, view, masters=None)
        counts = np.bincount(placed, minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_neighbor_affinity(self):
        # A node whose neighbors all sit on partition 2 should join them
        # when loads are equal.
        g = star_graph(4)  # 0 -> 1..4
        p = prop_for(g, 4)
        rule = Fennel()
        state = rule.make_state(4, 1)
        view = state.host_view(0)
        masters = np.full(5, -1, dtype=np.int32)
        masters[1:] = 2
        assert rule.assign(p, 0, view, masters) == 2

    def test_deterministic(self):
        g, p, rule, _ = self.make()
        out = []
        for _ in range(2):
            state = rule.make_state(4, 1)
            view = state.host_view(0)
            masters = np.full(g.num_nodes, -1, dtype=np.int32)
            for v in range(g.num_nodes):
                masters[v] = rule.assign(p, v, view, masters)
            out.append(masters.copy())
        assert np.array_equal(out[0], out[1])

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            Fennel(gamma=1.0)

    def test_compute_units_scale_with_k(self):
        assert Fennel().compute_units(100, 0, 8) > Fennel().compute_units(100, 0, 2)


class TestFennelEB:
    def test_high_degree_short_circuits_to_contiguous_eb(self):
        g = star_graph(50)  # node 0 has degree 50
        p = prop_for(g, 2)
        rule = FennelEB(degree_threshold=10)
        state = rule.make_state(2, 1)
        view = state.host_view(0)
        masters = np.full(51, -1, dtype=np.int32)
        part = rule.assign(p, 0, view, masters)
        assert part == ContiguousEB().assign(p, 0, None)
        # short-circuit must not charge state
        assert view.numNodes.sum() == 0

    def test_low_degree_charges_node_and_edges(self):
        g = star_graph(3)
        p = prop_for(g, 2)
        rule = FennelEB(degree_threshold=10)
        state = rule.make_state(2, 1)
        view = state.host_view(0)
        part = rule.assign(p, 0, view, np.full(4, -1, dtype=np.int32))
        assert view.numNodes.sum() == 1
        assert view.numEdges.sum() == 3  # out-degree of node 0

    def test_balances_by_edges(self):
        g = erdos_renyi(120, 2400, seed=9)
        p = prop_for(g, 4)
        rule = FennelEB(degree_threshold=10**9)  # never short-circuit
        state = rule.make_state(4, 1)
        view = state.host_view(0)
        masters = np.full(120, -1, dtype=np.int32)
        for v in range(120):
            masters[v] = rule.assign(p, v, view, masters)
        edge_loads = np.zeros(4)
        np.add.at(edge_loads, masters, g.out_degree())
        assert edge_loads.max() <= 1.6 * edge_loads.mean()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FennelEB(gamma=0.5)
        with pytest.raises(ValueError):
            FennelEB(degree_threshold=-1)


class TestBatchScalarEquivalence:
    """The hoisted batch loops must replay the paper's scalar semantics."""

    @pytest.mark.parametrize("rule_name", ["Fennel", "FennelEB"])
    def test_batch_equals_scalar_sequence(self, rule_name):
        g = erdos_renyi(80, 900, seed=11)
        k = 4
        p = prop_for(g, k)
        kwargs = {"degree_threshold": 15} if rule_name == "FennelEB" else {}
        ids = np.arange(80)

        batch_rule = make_master_rule(rule_name, **kwargs)
        state = batch_rule.make_state(k, 1)
        masters_b = np.full(80, -1, dtype=np.int32)
        view = state.host_view(0)
        masters_b[:] = -1
        got_batch = batch_rule.assign_batch(p, ids, view, masters_b)
        # NOTE: scalar path feeds masters incrementally; replicate that
        # for the batch by assigning in chunks of 1 with updates.
        scalar_rule = make_master_rule(rule_name, **kwargs)
        state2 = scalar_rule.make_state(k, 1)
        view2 = state2.host_view(0)
        masters_s = np.full(80, -1, dtype=np.int32)
        got_scalar = np.empty(80, dtype=np.int32)
        for v in ids:
            got_scalar[v] = scalar_rule.assign(p, int(v), view2, masters_s)
            masters_s[v] = got_scalar[v]
        # Batch sees a fixed masters snapshot while scalar updates it per
        # node, so compare under the same protocol: re-run batch per-node.
        per_node_rule = make_master_rule(rule_name, **kwargs)
        state3 = per_node_rule.make_state(k, 1)
        view3 = state3.host_view(0)
        masters_p = np.full(80, -1, dtype=np.int32)
        got_per_node = np.empty(80, dtype=np.int32)
        for v in ids:
            got_per_node[v] = per_node_rule.assign_batch(
                p, np.array([v]), view3, masters_p
            )[0]
            masters_p[v] = got_per_node[v]
        assert np.array_equal(got_per_node, got_scalar)
        # State totals agree regardless of protocol.
        assert state3.totals()[0].sum() == state2.totals()[0].sum()

    def test_batch_state_updates_match_scalar(self):
        g = erdos_renyi(50, 400, seed=12)
        p = prop_for(g, 3)
        rule = make_master_rule("FennelEB", degree_threshold=10)
        state = rule.make_state(3, 1)
        view = state.host_view(0)
        rule.assign_batch(p, np.arange(50), view, None)
        nodes, edges = state.totals()
        low_degree = g.out_degree() <= 10
        assert nodes.sum() == int(low_degree.sum())
        assert edges.sum() == int(g.out_degree()[low_degree].sum())


class TestRegistry:
    @pytest.mark.parametrize("name", ["Contiguous", "ContiguousEB", "Fennel", "FennelEB"])
    def test_make(self, name):
        assert make_master_rule(name).name == name

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_master_rule("Magic")

    def test_kwargs_forwarded(self):
        rule = make_master_rule("FennelEB", degree_threshold=7)
        assert rule.degree_threshold == 7
