"""Tests for on-disk formats and converters."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    convert,
    erdos_renyi,
    gr_file_size,
    read_edgelist,
    read_gr,
    read_gr_slice,
    read_metis,
    write_edgelist,
    write_gr,
    write_metis,
)
from repro.graph.formats import FormatError


def sample():
    return CSRGraph.from_edges([0, 0, 1, 3], [1, 2, 3, 0], num_nodes=4)


class TestBinaryGR:
    def test_roundtrip(self, tmp_path):
        g = sample()
        p = tmp_path / "g.gr"
        write_gr(g, p)
        assert read_gr(p) == g

    def test_roundtrip_weighted(self, tmp_path):
        g = sample().with_random_weights(seed=1)
        p = tmp_path / "g.gr"
        write_gr(g, p)
        loaded = read_gr(p)
        assert loaded == g
        assert loaded.is_weighted

    def test_roundtrip_empty(self, tmp_path):
        g = CSRGraph.empty(7)
        p = tmp_path / "g.gr"
        write_gr(g, p)
        assert read_gr(p) == g

    def test_file_size_matches_gr_file_size(self, tmp_path):
        g = erdos_renyi(50, 300, seed=2)
        p = tmp_path / "g.gr"
        write_gr(g, p)
        assert p.stat().st_size == gr_file_size(g)

    def test_slice_read(self, tmp_path):
        g = erdos_renyi(40, 400, seed=3)
        p = tmp_path / "g.gr"
        write_gr(g, p)
        header, indptr, indices, data = read_gr_slice(p, 10, 20)
        assert header.num_nodes == 40
        assert data is None
        assert np.array_equal(indptr, g.indptr[10:21])
        assert np.array_equal(indices, g.indices[g.indptr[10] : g.indptr[20]])

    def test_slice_read_weighted(self, tmp_path):
        g = erdos_renyi(20, 100, seed=4).with_random_weights(seed=4)
        p = tmp_path / "g.gr"
        write_gr(g, p)
        _, indptr, indices, data = read_gr_slice(p, 5, 15)
        assert np.array_equal(data, g.edge_data[g.indptr[5] : g.indptr[15]])

    def test_slice_full_range(self, tmp_path):
        g = sample()
        p = tmp_path / "g.gr"
        write_gr(g, p)
        _, indptr, indices, _ = read_gr_slice(p, 0, g.num_nodes)
        assert np.array_equal(indptr, g.indptr)
        assert np.array_equal(indices, g.indices)

    def test_slice_out_of_bounds(self, tmp_path):
        g = sample()
        p = tmp_path / "g.gr"
        write_gr(g, p)
        with pytest.raises(ValueError):
            read_gr_slice(p, 0, 99)

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "bad.gr"
        p.write_bytes(b"NOTAGRPH" + b"\x00" * 100)
        with pytest.raises(FormatError):
            read_gr(p)

    def test_truncated_header(self, tmp_path):
        p = tmp_path / "trunc.gr"
        p.write_bytes(b"CU")
        with pytest.raises(FormatError):
            read_gr(p)

    def test_truncated_payload(self, tmp_path):
        g = sample()
        p = tmp_path / "g.gr"
        write_gr(g, p)
        data = p.read_bytes()
        p.write_bytes(data[:-8])
        with pytest.raises(FormatError):
            read_gr(p)


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = sample()
        p = tmp_path / "g.el"
        write_edgelist(g, p)
        assert read_edgelist(p, num_nodes=4) == g

    def test_roundtrip_weighted(self, tmp_path):
        g = sample().with_uniform_weights(9)
        p = tmp_path / "g.el"
        write_edgelist(g, p)
        loaded = read_edgelist(p, num_nodes=4, weighted=True)
        assert loaded == g

    def test_comments_and_blank_lines(self, tmp_path):
        p = tmp_path / "g.el"
        p.write_text("# header\n\n0 1\n1 2\n")
        g = read_edgelist(p)
        assert g.edge_set() == {(0, 1), (1, 2)}

    def test_default_weight_is_one(self, tmp_path):
        p = tmp_path / "g.el"
        p.write_text("0 1\n")
        g = read_edgelist(p, weighted=True)
        assert g.edge_data.tolist() == [1]

    def test_malformed_line(self, tmp_path):
        p = tmp_path / "g.el"
        p.write_text("0\n")
        with pytest.raises(FormatError):
            read_edgelist(p)

    def test_non_integer(self, tmp_path):
        p = tmp_path / "g.el"
        p.write_text("a b\n")
        with pytest.raises(FormatError):
            read_edgelist(p)


class TestMetis:
    def test_roundtrip_symmetric(self, tmp_path):
        g = sample().symmetrize()
        p = tmp_path / "g.metis"
        write_metis(g, p)
        loaded = read_metis(p)
        # self-loops dropped; sample has none
        assert loaded.edge_set() == g.edge_set()

    def test_write_drops_self_loops(self, tmp_path):
        g = CSRGraph.from_edges([0, 0], [0, 1], num_nodes=2)
        p = tmp_path / "g.metis"
        write_metis(g, p)
        loaded = read_metis(p)
        assert (0, 0) not in loaded.edge_set()

    def test_malformed_header(self, tmp_path):
        p = tmp_path / "g.metis"
        p.write_text("5\n")
        with pytest.raises(FormatError):
            read_metis(p)

    def test_missing_lines(self, tmp_path):
        p = tmp_path / "g.metis"
        p.write_text("3 1\n2\n")
        with pytest.raises(FormatError):
            read_metis(p)


class TestConvert:
    def test_gr_to_el(self, tmp_path):
        g = sample()
        src = tmp_path / "g.gr"
        dst = tmp_path / "g.el"
        write_gr(g, src)
        returned = convert(src, dst)
        assert returned == g
        assert read_edgelist(dst, num_nodes=4) == g

    def test_el_to_gr(self, tmp_path):
        g = sample()
        src = tmp_path / "g.el"
        dst = tmp_path / "g.gr"
        write_edgelist(g, src)
        convert(src, dst)
        assert read_gr(dst) == g

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(ValueError):
            convert(tmp_path / "a.xyz", tmp_path / "b.gr")
        src = tmp_path / "a.gr"
        write_gr(sample(), src)
        with pytest.raises(ValueError):
            convert(src, tmp_path / "b.xyz")
