"""The SPMD-safety lint (``repro.analysis.lint``).

Each rule is exercised against ``tests/lint_corpus`` — one ``bad_*.py``
fixture per rule that must be flagged, and one ``clean.py`` of
near-misses that must not be.  The corpus files are parsed as data,
never imported.  Also covers suppression comments, severity/strict
semantics, JSON output, and the ``repro lint`` CLI's exit codes.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    ERROR,
    WARNING,
    Finding,
    LintReport,
    ModuleSource,
    all_rules,
    run_lint,
)
from repro.cli import main

CORPUS = Path(__file__).parent / "lint_corpus"

#: rule name -> corpus fixture that must trigger it.
RULE_FIXTURES = {
    "unseeded-rng": "bad_rng.py",
    "wall-clock": "bad_clock.py",
    "unordered-iteration": "bad_set_iteration.py",
    "unordered-dict-send": "bad_dict_send_iteration.py",
    "comm-in-task": "bad_comm_in_task.py",
    "ledger-bypass": "bad_ledger_bypass.py",
    "unaccounted-send": "bad_unaccounted_send.py",
    "cross-host-write": "bad_cross_host_write.py",
    "unshippable-task-capture": "bad_unshippable_capture.py",
    "scalar-send-in-hot-loop": "bad_scalar_send_loop.py",
    "contract-undeclared-op": "bad_undeclared_op.py",
    "swallowed-error": "bad_swallowed_error.py",
}


class TestCorpus:
    def test_every_rule_has_a_fixture(self):
        assert set(RULE_FIXTURES) == set(all_rules())

    @pytest.mark.parametrize("rule,filename", sorted(RULE_FIXTURES.items()))
    def test_bad_snippet_is_flagged_by_its_rule(self, rule, filename):
        report = run_lint([CORPUS / filename], root=CORPUS)
        flagged = {f.rule for f in report.findings}
        assert rule in flagged, report.render_text()

    def test_clean_fixture_has_zero_findings(self):
        report = run_lint([CORPUS / "clean.py"], root=CORPUS)
        assert report.findings == [], report.render_text()
        assert report.files_checked == 1

    def test_whole_corpus_fires_every_rule(self):
        report = run_lint([CORPUS], root=CORPUS)
        assert not report.ok()
        assert {f.rule for f in report.findings} >= set(RULE_FIXTURES)
        # clean.py contributes nothing.
        assert not any(f.path == "clean.py" for f in report.findings)

    def test_findings_are_sorted_and_anchored(self):
        report = run_lint([CORPUS], root=CORPUS)
        keys = [(f.path, f.line, f.col, f.rule) for f in report.findings]
        assert keys == sorted(keys)
        for f in report.findings:
            assert f.line >= 1
            assert f.severity in (ERROR, WARNING)
            assert f.message


class TestSuppression:
    def lint_text(self, tmp_path, text):
        path = tmp_path / "mod.py"
        path.write_text(text)
        return run_lint([path], root=tmp_path)

    def test_same_line_disable(self, tmp_path):
        report = self.lint_text(
            tmp_path,
            "import random\n"
            "x = random.random()  # repro-lint: disable=unseeded-rng -- test\n",
        )
        assert report.findings == []
        assert report.suppressed == 1

    def test_disable_next_line(self, tmp_path):
        report = self.lint_text(
            tmp_path,
            "import random\n"
            "# repro-lint: disable-next-line=unseeded-rng -- test\n"
            "x = random.random()\n",
        )
        assert report.findings == []
        assert report.suppressed == 1

    def test_disable_file_and_all(self, tmp_path):
        report = self.lint_text(
            tmp_path,
            "# repro-lint: disable-file=all -- corpus-style file\n"
            "import random, time\n"
            "x = random.random()\n"
            "y = time.time()\n",
        )
        assert report.findings == []
        assert report.suppressed == 2

    def test_unrelated_rule_does_not_suppress(self, tmp_path):
        report = self.lint_text(
            tmp_path,
            "import random\n"
            "x = random.random()  # repro-lint: disable=wall-clock\n",
        )
        assert [f.rule for f in report.findings] == ["unseeded-rng"]
        assert report.suppressed == 0


class TestReport:
    def test_severity_and_strict_semantics(self):
        warn_only = run_lint([CORPUS / "bad_cross_host_write.py"], root=CORPUS)
        assert warn_only.errors == []
        assert warn_only.warnings
        assert warn_only.ok(strict=False)
        assert not warn_only.ok(strict=True)
        errors = run_lint([CORPUS / "bad_rng.py"], root=CORPUS)
        assert not errors.ok(strict=False)

    def test_json_output_round_trips(self):
        report = run_lint([CORPUS / "bad_rng.py"], root=CORPUS)
        doc = json.loads(report.to_json())
        assert doc["version"] == 2
        assert doc["files_checked"] == 1
        assert doc["counts"]["error"] == len(report.errors)
        assert len(doc["findings"]) == len(report.findings)
        first = doc["findings"][0]
        assert set(first) == {
            "rule", "severity", "path", "line", "col", "message",
        }

    def test_parse_error_is_a_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        report = run_lint([path], root=tmp_path)
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert not report.ok()

    def test_rule_subset_and_exempt_paths(self, tmp_path):
        rules = all_rules()
        report = run_lint(
            [CORPUS / "bad_rng.py"], rules=[rules["wall-clock"]], root=CORPUS
        )
        assert report.findings == []
        # wall-clock exempts the cost model, where real clocks are legal.
        clock = tmp_path / "cost_model.py"
        clock.write_text("import time\nt = time.time()\n")
        nested = tmp_path / "runtime"
        nested.mkdir()
        (nested / "cost_model.py").write_text("import time\nt = time.time()\n")
        report = run_lint([tmp_path], root=tmp_path)
        flagged = {f.path for f in report.findings}
        assert "cost_model.py" in flagged  # only runtime/cost_model.py is exempt
        assert "runtime/cost_model.py" not in flagged

    def test_render_text_mentions_every_finding(self):
        report = run_lint([CORPUS / "bad_clock.py"], root=CORPUS)
        text = report.render_text()
        for f in report.findings:
            assert f"{f.path}:{f.line}" in text
        assert report.summary() in text


class TestCLI:
    def test_exit_codes(self, capsys):
        assert main(["lint", str(CORPUS / "clean.py")]) == 0
        assert "OK:" in capsys.readouterr().out
        assert main(["lint", str(CORPUS / "bad_rng.py")]) == 1
        assert "FAIL:" in capsys.readouterr().err

    def test_strict_escalates_warnings(self, capsys):
        target = str(CORPUS / "bad_cross_host_write.py")
        assert main(["lint", target]) == 0
        capsys.readouterr()
        assert main(["lint", target, "--strict"]) == 1
        assert "strict" in capsys.readouterr().err

    def test_json_flag(self, capsys):
        assert main(["lint", str(CORPUS / "bad_rng.py"), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 2 and doc["findings"]

    def test_rule_filter(self, capsys):
        target = str(CORPUS / "bad_rng.py")
        assert main(["lint", target, "--rule", "wall-clock"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["lint", target, "--rule", "no-such-rule"])

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in RULE_FIXTURES:
            assert name in out

    def test_default_path_is_the_package_and_it_is_clean(self, capsys):
        """The shipped sources must stay lint-clean in strict mode."""
        assert main(["lint", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "OK:" in out


class TestFramework:
    def test_module_source_parent_links(self):
        module = ModuleSource(
            Path("x.py"), "x.py", "def f():\n    return 1\n"
        )
        import ast

        ret = next(
            n for n in ast.walk(module.tree) if isinstance(n, ast.Return)
        )
        assert isinstance(ret._repro_parent, ast.FunctionDef)

    def test_finding_render(self):
        f = Finding("demo", ERROR, "a/b.py", 3, 7, "boom")
        assert f.render() == "a/b.py:3:7: error [demo] boom"

    def test_empty_report_is_ok(self):
        report = LintReport()
        assert report.ok(strict=True)
        assert "0 error(s)" in report.summary()
