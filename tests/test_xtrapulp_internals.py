"""White-box tests for the XtraPulp baseline's internals."""

import numpy as np
import pytest

from repro.baselines.xtrapulp import XtraPulp
from repro.graph import CSRGraph, cycle_graph, erdos_renyi, grid_graph


def make(k=2, **kw):
    return XtraPulp(k, **kw)


class TestInitialLabels:
    def test_contiguous_blocks(self):
        xp = make(k=3)
        g = CSRGraph.empty(9)
        labels = xp._initial_labels(g)
        assert labels.tolist() == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_uneven(self):
        xp = make(k=4)
        labels = xp._initial_labels(CSRGraph.empty(10))
        assert labels.max() == 3
        counts = np.bincount(labels, minlength=4)
        assert counts.max() - counts.min() <= 3


class TestAdjacency:
    def test_both_ways_doubles_edges(self):
        g = CSRGraph.from_edges([0, 1], [1, 2], num_nodes=3)
        u, v = XtraPulp._adjacency_both_ways(g)
        assert u.size == 4
        pairs = set(zip(u.tolist(), v.tolist()))
        assert (0, 1) in pairs and (1, 0) in pairs


class TestLPPass:
    def test_noop_when_no_gain(self):
        # Perfectly partitioned two cliques: LP must not move anything.
        src = [0, 1, 2, 3, 4, 5]
        dst = [1, 2, 0, 4, 5, 3]
        g = CSRGraph.from_edges(src, dst, num_nodes=6)
        xp = make(k=2)
        und = XtraPulp._adjacency_both_ways(g)
        labels = np.array([0, 0, 0, 1, 1, 1], dtype=np.int64)
        ones = np.ones(6, dtype=np.int64)
        out = xp._lp_pass(g, und, labels, [(ones, 1.1)])
        assert np.array_equal(out, labels)

    def test_pulls_lone_vertex_home(self):
        # Vertex 3 starts on partition 1 but all neighbors are on 0.
        g = CSRGraph.from_edges([0, 1, 2], [3, 3, 3], num_nodes=6)
        xp = make(k=2, vertex_imbalance=2.0)
        und = XtraPulp._adjacency_both_ways(g)
        labels = np.array([0, 0, 0, 1, 1, 1], dtype=np.int64)
        ones = np.ones(6, dtype=np.int64)
        out = xp._lp_pass(g, und, labels, [(ones, 2.0)])
        assert out[3] == 0

    def test_capacity_blocks_moves(self):
        # Everything wants partition 0 but capacity forbids it.
        g = cycle_graph(8).symmetrize()
        xp = make(k=2, vertex_imbalance=1.0)  # zero slack
        und = XtraPulp._adjacency_both_ways(g)
        labels = (np.arange(8) // 4).astype(np.int64)
        ones = np.ones(8, dtype=np.int64)
        out = xp._lp_pass(g, und, labels, [(ones, 1.0)])
        counts = np.bincount(out, minlength=2)
        assert counts.max() <= 4  # capacity = 1.0 * 8 / 2

    def test_empty_graph_passthrough(self):
        g = CSRGraph.empty(0)
        xp = make(k=2)
        labels = np.zeros(0, dtype=np.int64)
        out = xp._lp_pass(g, (np.empty(0, np.int64), np.empty(0, np.int64)),
                          labels, [(np.zeros(0, np.int64), 1.1)])
        assert out.size == 0


class TestChargeAccounting:
    def test_passes_charge_compute_everywhere(self):
        g = erdos_renyi(60, 600, seed=30)
        dg = make(k=3).partition(g)
        lp = dg.breakdown.phase("Label Propagation")
        assert lp.compute > 0
        assert lp.collective > 0  # per-pass allreduce

    def test_boundary_bytes_scale_with_cut(self):
        # A grid (tiny cut after LP) vs a random graph (huge cut).
        grid = grid_graph(16, 16).symmetrize()
        rand = erdos_renyi(256, 2048, seed=31)
        grid_bytes = make(k=4).partition(grid).breakdown.comm_bytes(
            "Label Propagation"
        )
        rand_bytes = make(k=4).partition(rand).breakdown.comm_bytes(
            "Label Propagation"
        )
        assert rand_bytes > grid_bytes

    def test_refinement_phase_present(self):
        g = erdos_renyi(40, 200, seed=32)
        dg = make(k=2).partition(g)
        names = [p.name for p in dg.breakdown.phases]
        assert names == ["Graph Reading", "Label Propagation", "Refinement"]
