"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph import erdos_renyi, read_gr, write_gr


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "g.gr"
    write_gr(erdos_renyi(200, 2000, seed=3), path)
    return path


class TestGenerate:
    def test_kron(self, tmp_path, capsys):
        out = tmp_path / "k.gr"
        assert main(["generate", "kron", str(out), "--scale", "6"]) == 0
        g = read_gr(out)
        assert g.num_nodes == 64
        assert "wrote" in capsys.readouterr().out

    def test_webcrawl(self, tmp_path):
        out = tmp_path / "w.gr"
        assert main(["generate", "webcrawl", str(out), "--nodes", "300",
                     "--degree", "5"]) == 0
        assert read_gr(out).num_edges == 1500

    def test_er(self, tmp_path):
        out = tmp_path / "e.gr"
        assert main(["generate", "er", str(out), "--nodes", "100",
                     "--degree", "4"]) == 0
        assert read_gr(out).num_edges == 400


class TestConvert:
    def test_gr_to_el(self, graph_file, tmp_path, capsys):
        dst = tmp_path / "g.el"
        assert main(["convert", str(graph_file), str(dst)]) == 0
        assert dst.exists()
        assert "converted" in capsys.readouterr().out


class TestInfo:
    def test_info(self, graph_file, capsys):
        assert main(["info", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "|V|" in out and "200" in out


class TestPartition:
    def test_partition_default(self, graph_file, capsys):
        assert main(["partition", str(graph_file), "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "replication factor" in out
        assert "TOTAL" in out

    def test_partition_cvc_csc(self, graph_file, capsys):
        assert main([
            "partition", str(graph_file), "-k", "4", "-p", "CVC",
            "--output-format", "csc",
        ]) == 0
        assert "Cartesian" in capsys.readouterr().out

    def test_partition_svc_rounds(self, graph_file):
        assert main([
            "partition", str(graph_file), "-k", "2", "-p", "SVC",
            "--sync-rounds", "3",
        ]) == 0


class TestExperiment:
    def test_known_experiment(self, capsys):
        assert main(["experiment", "table3", "--scale", "tiny"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
