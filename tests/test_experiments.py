"""Tests for the experiment harness (tiny scale for speed)."""

import pytest

from repro.experiments import EXPERIMENTS, ExperimentContext, ExperimentResult
from repro.experiments import fig3, fig56, fig7, table3, table4, table5, table67


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(scale="tiny")


class TestContext:
    def test_graph_variants(self, ctx):
        base = ctx.graph("kron")
        sym = ctx.graph("kron", "sym")
        weighted = ctx.graph("kron", "weighted")
        assert sym.num_edges >= base.num_edges
        assert weighted.is_weighted and not base.is_weighted

    def test_unknown_variant(self, ctx):
        with pytest.raises(KeyError):
            ctx.graph("kron", "reversed")

    def test_partition_cached(self, ctx):
        a = ctx.partition("kron", "EEC", 4)
        b = ctx.partition("kron", "EEC", 4)
        assert a is b

    def test_cache_distinguishes_parameters(self, ctx):
        a = ctx.partition("kron", "SVC", 4, sync_rounds=1)
        b = ctx.partition("kron", "SVC", 4, sync_rounds=2)
        assert a is not b

    def test_xtrapulp_partitioner(self, ctx):
        dg = ctx.partition("kron", "XtraPulp", 4)
        assert dg.policy_name == "XtraPulp"

    def test_app_variants(self, ctx):
        assert ctx.app_variant("cc") == "sym"
        assert ctx.app_variant("sssp") == "weighted"
        assert ctx.app_variant("bfs") == "base"

    def test_run_app(self, ctx):
        res = ctx.run_app("bfs", "kron", "EEC", 4)
        assert res.name == "bfs"
        assert res.time > 0

    def test_unknown_app(self, ctx):
        with pytest.raises(KeyError):
            ctx.run_app("trianglecount", "kron", "EEC", 4)


class TestExperimentResult:
    def test_format_contains_rows_and_notes(self):
        res = ExperimentResult(
            experiment="X", title="t", columns=["a", "b"],
            rows=[{"a": 1, "b": 2.5}], notes=["hello"],
        )
        text = res.format()
        assert "== X: t ==" in text
        assert "2.500" in text
        assert "note: hello" in text

    def test_format_missing_cell(self):
        res = ExperimentResult("X", "t", ["a"], [{}])
        assert "-" in res.format()

    def test_column(self):
        res = ExperimentResult("X", "t", ["a"], [{"a": 1}, {"a": 2}])
        assert res.column("a") == [1, 2]


class TestDrivers:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table3", "fig3", "table4", "fig4", "table5",
            "fig5", "fig6", "fig7", "table6", "table7",
            "supp_quality", "supp_vertex_order", "supp_scaling",
            "supp_end_to_end", "supp_orientation", "supp_straggler",
            "supp_schedulers", "supp_memory",
        }

    def test_supplementary_quality(self, ctx):
        from repro.experiments import supplementary

        res = supplementary.run_quality_table(
            ctx, hosts=4, policies=["EEC", "CVC"]
        )
        assert len(res.rows) == 2

    def test_supplementary_vertex_order(self, ctx):
        from repro.experiments import supplementary

        res = supplementary.run_vertex_order(ctx, scale="tiny", hosts=4)
        assert len(res.rows) == 6

    def test_supplementary_end_to_end(self, ctx):
        from repro.experiments import motivation

        res = motivation.run_end_to_end(ctx, hosts=4, app="bfs")
        assert {r["partitioner"] for r in res.rows} == {
            "XtraPulp", "EEC", "CVC", "SVC"
        }
        assert all(r["end-to-end ms"] > 0 for r in res.rows)

    def test_supplementary_orientation(self, ctx):
        from repro.experiments import motivation

        res = motivation.run_orientation(ctx, hosts=4)
        assert len(res.rows) == 2

    def test_supplementary_straggler(self, ctx):
        from repro.experiments import motivation

        res = motivation.run_straggler(ctx, hosts=4, slow_factor=0.5)
        assert all(r["slowdown"] > 1.0 for r in res.rows)

    def test_supplementary_schedulers(self, ctx):
        from repro.experiments import schedulers

        res = schedulers.run_schedulers(ctx, hosts=4)
        assert len(res.rows) == 5

    def test_supplementary_scaling(self, ctx):
        from repro.experiments import scaling

        res = scaling.run_strong_scaling(ctx, hosts=[2, 4], policies=["EEC"])
        assert len(res.rows) == 2

    def test_table3(self, ctx):
        res = table3.run(ctx)
        assert len(res.rows) == 5

    def test_fig3_small_slice(self, ctx):
        res = fig3.run(ctx, graphs=["kron"], hosts=[4])
        assert len(res.rows) == 1
        assert all(res.rows[0][p] > 0 for p in ("XtraPulp", "EEC", "SVC"))

    def test_table4_small_slice(self, ctx):
        res = table4.run(ctx, graphs=["kron"], hosts=[4], apps=["bfs"])
        assert {r["policy"] for r in res.rows} == {
            "EEC", "HVC", "CVC", "FEC", "GVC", "SVC"
        }
        assert all(r["partitioning speedup"] > 0 for r in res.rows)

    def test_table5_slice(self, ctx):
        res = table5.run(ctx, graphs=["kron"], hosts=4)
        assert len(res.rows) == 2

    def test_fig56_slice(self, ctx):
        res = fig56.run(ctx, hosts=4, graphs=["kron"], apps=["bfs"])
        assert res.experiment == "Figure 5"
        res16 = fig56.run(ctx, hosts=16, graphs=["kron"], apps=["bfs"])
        assert res16.experiment == "Figure 6"

    def test_fig7_slice(self, ctx):
        res = fig7.run(ctx, graphs=["kron"], hosts=4, buffer_sizes=[0, 4096])
        assert res.rows[0]["kron"] >= res.rows[1]["kron"]

    def test_table6_slice(self, ctx):
        res = table67.run_table6(ctx, graphs=["kron"], hosts=4, rounds=[1, 10])
        assert len(res.rows) == 1

    def test_table7_slice(self, ctx):
        res = table67.run_table7(
            ctx, graphs=["kron"], hosts=4, rounds=[1, 10], apps=["bfs"]
        )
        assert len(res.rows) == 1
