"""Tests for the distributed analytics engine and applications.

The core requirement: for every policy, the distributed execution over
CuSP partitions computes exactly what a single-machine reference computes.
"""

import numpy as np
import pytest

from repro.analytics import (
    BFS,
    ConnectedComponents,
    Engine,
    INF,
    PageRank,
    SSSP,
    bfs_reference,
    cc_reference,
    default_source,
    pagerank_reference,
    sssp_reference,
)
from repro.baselines import XtraPulp
from repro.core import CuSP
from repro.graph import (
    CSRGraph,
    cycle_graph,
    erdos_renyi,
    get_dataset,
    grid_graph,
    path_graph,
    star_graph,
)

POLICIES = ["EEC", "HVC", "CVC", "FEC", "GVC", "SVC", "DBH"]


@pytest.fixture(scope="module")
def crawl():
    return get_dataset("gsh", "tiny")


@pytest.fixture(scope="module")
def crawl_sym(crawl):
    return crawl.symmetrize()


@pytest.fixture(scope="module")
def crawl_weighted(crawl):
    return crawl.with_random_weights(seed=11)


class TestBFS:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_matches_reference_all_policies(self, policy, crawl):
        src = default_source(crawl)
        dg = CuSP(4, policy, sync_rounds=3).partition(crawl)
        res = Engine(dg).run(BFS(src))
        assert np.array_equal(res.values, bfs_reference(crawl, src))

    def test_xtrapulp_partitions_work_too(self, crawl):
        src = default_source(crawl)
        dg = XtraPulp(4).partition(crawl)
        res = Engine(dg).run(BFS(src))
        assert np.array_equal(res.values, bfs_reference(crawl, src))

    def test_path_graph_distances(self):
        g = path_graph(10)
        dg = CuSP(3, "EEC").partition(g)
        res = Engine(dg).run(BFS(0))
        assert res.values.tolist() == list(range(10))

    def test_unreachable_stays_inf(self):
        g = CSRGraph.from_edges([0], [1], num_nodes=4)
        dg = CuSP(2, "EEC").partition(g)
        res = Engine(dg).run(BFS(0))
        assert res.values[1] == 1
        assert res.values[2] == INF and res.values[3] == INF

    def test_source_only_component(self):
        g = CSRGraph.empty(5)
        dg = CuSP(2, "EEC").partition(g)
        res = Engine(dg).run(BFS(2))
        assert res.values[2] == 0
        assert np.all(res.values[[0, 1, 3, 4]] == INF)

    @pytest.mark.parametrize("k", [1, 2, 5, 8])
    def test_host_counts(self, k, crawl):
        src = default_source(crawl)
        dg = CuSP(k, "CVC").partition(crawl)
        res = Engine(dg).run(BFS(src))
        assert np.array_equal(res.values, bfs_reference(crawl, src))

    def test_reference_matches_networkx(self, crawl):
        nx = pytest.importorskip("networkx")
        src = default_source(crawl)
        G = nx.DiGraph()
        G.add_nodes_from(range(crawl.num_nodes))
        G.add_edges_from(zip(*crawl.edges()))
        lengths = nx.single_source_shortest_path_length(G, src)
        ref = bfs_reference(crawl, src)
        for v in range(crawl.num_nodes):
            if v in lengths:
                assert ref[v] == lengths[v]
            else:
                assert ref[v] == INF


class TestSSSP:
    @pytest.mark.parametrize("policy", ["EEC", "HVC", "CVC", "SVC"])
    def test_matches_dijkstra(self, policy, crawl_weighted):
        src = default_source(crawl_weighted)
        dg = CuSP(4, policy, sync_rounds=3).partition(crawl_weighted)
        res = Engine(dg).run(SSSP(src))
        assert np.array_equal(res.values, sssp_reference(crawl_weighted, src))

    def test_requires_weights(self, crawl):
        dg = CuSP(2, "EEC").partition(crawl)
        with pytest.raises(ValueError):
            Engine(dg).run(SSSP(0))

    def test_weighted_path(self):
        g = path_graph(5).with_uniform_weights(3)
        dg = CuSP(2, "EEC").partition(g)
        res = Engine(dg).run(SSSP(0))
        assert res.values.tolist() == [0, 3, 6, 9, 12]

    def test_prefers_cheaper_long_route(self):
        # 0->2 costs 10; 0->1->2 costs 2.
        g = CSRGraph.from_edges(
            [0, 0, 1], [2, 1, 2], num_nodes=3, edge_data=[10, 1, 1]
        )
        dg = CuSP(2, "HVC").partition(g)
        res = Engine(dg).run(SSSP(0))
        assert res.values.tolist() == [0, 1, 2]


class TestCC:
    @pytest.mark.parametrize("policy", ["EEC", "HVC", "CVC", "SVC"])
    def test_matches_reference(self, policy, crawl_sym):
        dg = CuSP(4, policy, sync_rounds=3).partition(crawl_sym)
        res = Engine(dg).run(ConnectedComponents())
        assert np.array_equal(res.values, cc_reference(crawl_sym))

    def test_two_components(self):
        g = CSRGraph.from_edges([0, 1, 3, 4], [1, 0, 4, 3], num_nodes=6)
        dg = CuSP(3, "EEC").partition(g)
        res = Engine(dg).run(ConnectedComponents())
        assert res.values.tolist() == [0, 0, 2, 3, 3, 5]

    def test_cycle_is_one_component(self):
        g = cycle_graph(12).symmetrize()
        dg = CuSP(4, "CVC").partition(g)
        res = Engine(dg).run(ConnectedComponents())
        assert np.all(res.values == 0)


class TestPageRank:
    @pytest.mark.parametrize("policy", ["EEC", "HVC", "CVC", "SVC"])
    def test_close_to_reference(self, policy, crawl):
        dg = CuSP(4, policy, sync_rounds=3).partition(crawl)
        res = Engine(dg).run(PageRank())
        ref = pagerank_reference(crawl)
        # Broadcast elision below the tolerance lets mirror copies drift
        # by O(rounds * tolerance); allow that much.
        assert np.allclose(res.values, ref, atol=5e-4)

    def test_exact_on_single_partition(self, crawl):
        dg = CuSP(1, "EEC").partition(crawl)
        res = Engine(dg).run(PageRank())
        assert np.allclose(res.values, pagerank_reference(crawl), atol=1e-12)

    def test_mass_roughly_conserved(self, crawl):
        dg = CuSP(4, "CVC").partition(crawl)
        res = Engine(dg).run(PageRank())
        # Dangling mass is dropped, so sum <= 1 + drift.
        assert 0.2 < res.values.sum() <= 1.01

    def test_respects_max_rounds(self, crawl):
        dg = CuSP(4, "CVC").partition(crawl)
        res = Engine(dg).run(PageRank(max_rounds=3))
        assert res.rounds <= 3

    def test_grid_uniformity(self):
        # A symmetric cycle gives equal rank everywhere.
        g = cycle_graph(20)
        dg = CuSP(4, "EEC").partition(g)
        res = Engine(dg).run(PageRank())
        assert np.allclose(res.values, 1.0 / 20, atol=1e-6)

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            PageRank(damping=1.5)


class TestEngineCommunication:
    def test_edge_cut_has_no_broadcast_traffic(self, crawl):
        """Outgoing edge-cut mirrors are write-only: the broadcast
        direction must vanish (Gluon's edge-cut optimization, §V-C)."""
        src = default_source(crawl)
        dg = CuSP(4, "EEC").partition(crawl)
        engine = Engine(dg)
        assert all(not targets for targets in engine.bcast)
        res = engine.run(BFS(src))
        assert res.comm_bytes > 0  # reduce direction still pays

    def test_cvc_partner_restriction(self, crawl):
        """CVC hosts only exchange with their grid row/column (§V-B)."""
        from repro.core import grid_shape

        k = 8
        pr, pc = grid_shape(k)
        dg = CuSP(k, "CVC").partition(crawl)
        engine = Engine(dg)
        for m in range(k):
            for q in engine.bcast[m]:
                same_row = (m // pc) == (q // pc)
                same_col = (m % pc) == (q % pc)
                assert same_row or same_col

    def test_times_are_positive_and_rounds_counted(self, crawl):
        dg = CuSP(4, "HVC").partition(crawl)
        res = Engine(dg).run(BFS(default_source(crawl)))
        assert res.time > 0
        assert res.rounds >= 1
        assert len(res.breakdown.phases) == res.rounds

    def test_single_host_no_comm(self, crawl):
        dg = CuSP(1, "EEC").partition(crawl)
        res = Engine(dg).run(BFS(default_source(crawl)))
        assert res.comm_bytes == 0

    def test_default_source_is_max_out_degree(self, crawl):
        src = default_source(crawl)
        assert crawl.out_degree(src) == crawl.out_degree().max()
