"""Tests for the k-core app, partition disk I/O, and the ablation knobs."""

import numpy as np
import pytest

from repro.analytics import BFS, Engine, KCore, bfs_reference, default_source, kcore_reference
from repro.core import CuSP, load_partitions, save_partitions
from repro.graph import CSRGraph, complete_graph, get_dataset, path_graph


@pytest.fixture(scope="module")
def sym():
    return get_dataset("gsh", "tiny").symmetrize()


class TestKCore:
    @pytest.mark.parametrize("policy", ["EEC", "CVC", "HVC"])
    def test_matches_reference(self, policy, sym):
        # Pick k near the median degree so peeling actually cascades.
        k = int(np.median(sym.out_degree()))
        dg = CuSP(4, policy).partition(sym)
        app = KCore(k)
        res = Engine(dg).run(app)
        ref = kcore_reference(sym, k)
        assert np.array_equal(app.in_core(res.values), ref >= k)

    def test_cascading_peel(self):
        # A path has an empty 2-core: removal cascades end to end.
        g = path_graph(30).symmetrize()
        dg = CuSP(3, "EEC").partition(g)
        app = KCore(2)
        res = Engine(dg).run(app)
        assert not app.in_core(res.values).any()
        assert res.rounds > 1  # the cascade takes multiple rounds

    def test_complete_graph_core(self):
        g = complete_graph(6)
        dg = CuSP(2, "CVC").partition(g)
        app = KCore(5)
        res = Engine(dg).run(app)
        assert app.in_core(res.values).all()

    def test_k_too_large_kills_everything(self, sym):
        dg = CuSP(2, "EEC").partition(sym)
        app = KCore(10**6)
        res = Engine(dg).run(app)
        assert not app.in_core(res.values).any()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KCore(0)

    def test_reference_monotone_in_k(self, sym):
        k = int(np.median(sym.out_degree()))
        small = kcore_reference(sym, k) >= k
        large = kcore_reference(sym, k + 5) >= (k + 5)
        assert np.all(~small | ~large | small)  # large core subset of small
        assert large.sum() <= small.sum()


class TestPartitionIO:
    def test_roundtrip(self, tmp_path, sym):
        dg = CuSP(4, "CVC").partition(sym)
        save_partitions(dg, tmp_path / "parts")
        loaded = load_partitions(tmp_path / "parts")
        loaded.validate(sym)
        assert loaded.policy_name == "CVC"
        assert loaded.invariant == "2d-cut"
        assert np.array_equal(loaded.masters, dg.masters)
        for a, b in zip(dg.partitions, loaded.partitions):
            assert np.array_equal(a.global_ids, b.global_ids)
            assert a.local_graph == b.local_graph
            assert a.num_masters == b.num_masters

    def test_roundtrip_with_csc(self, tmp_path, sym):
        dg = CuSP(2, "EEC").partition(sym, output="csc")
        save_partitions(dg, tmp_path / "parts")
        loaded = load_partitions(tmp_path / "parts")
        for a, b in zip(dg.partitions, loaded.partitions):
            assert a.local_csc == b.local_csc

    def test_roundtrip_weighted(self, tmp_path):
        g = get_dataset("kron", "tiny").with_random_weights(seed=2)
        dg = CuSP(3, "HVC").partition(g)
        save_partitions(dg, tmp_path / "parts")
        loaded = load_partitions(tmp_path / "parts")
        loaded.validate(g)
        assert loaded.to_global_graph() == g

    def test_loaded_partitions_run_analytics(self, tmp_path):
        g = get_dataset("kron", "tiny")
        src = default_source(g)
        dg = CuSP(4, "EEC").partition(g)
        save_partitions(dg, tmp_path / "parts")
        loaded = load_partitions(tmp_path / "parts")
        res = Engine(loaded).run(BFS(src))
        assert np.array_equal(res.values, bfs_reference(g, src))

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_partitions(tmp_path / "nope")

    def test_bad_version(self, tmp_path, sym):
        dg = CuSP(2, "EEC").partition(sym)
        save_partitions(dg, tmp_path / "parts")
        meta = tmp_path / "parts" / "meta.json"
        meta.write_text(meta.read_text().replace('"format_version": 1',
                                                 '"format_version": 99'))
        with pytest.raises(ValueError):
            load_partitions(tmp_path / "parts")


class TestMasterSyncAblation:
    def test_same_partitions_either_way(self):
        g = get_dataset("kron", "tiny")
        opt = CuSP(4, "CVC", elide_master_communication=True).partition(g)
        naive = CuSP(4, "CVC", elide_master_communication=False).partition(g)
        assert np.array_equal(opt.masters, naive.masters)

    def test_pure_rule_elision_removes_all_master_comm(self):
        g = get_dataset("kron", "tiny")
        opt = CuSP(4, "CVC", elide_master_communication=True).partition(g)
        naive = CuSP(4, "CVC", elide_master_communication=False).partition(g)
        assert opt.breakdown.phase("Master Assignment").comm_bytes == 0
        assert naive.breakdown.phase("Master Assignment").comm_bytes > 0

    def test_request_driven_cheaper_than_broadcast_all(self):
        """On sparse graphs (the realistic regime: each host's neighbor
        set is a sliver of V) request-driven exchange beats broadcast-all.
        On tiny dense graphs the request lists approach V and the
        optimization cannot win — which is why the paper states it for
        web-crawls."""
        from repro.graph import grid_graph

        g = grid_graph(60, 60)
        opt = CuSP(8, "SVC", sync_rounds=4,
                   elide_master_communication=True).partition(g)
        naive = CuSP(8, "SVC", sync_rounds=4,
                     elide_master_communication=False).partition(g)
        assert (
            opt.breakdown.phase("Master Assignment").comm_bytes
            < naive.breakdown.phase("Master Assignment").comm_bytes
        )
        naive.validate(g)

    def test_read_balance_weights_shift_ranges(self):
        from repro.core import compute_read_ranges
        from repro.graph import star_graph

        g = star_graph(100)
        edge_bal = compute_read_ranges(g, 4, node_weight=0, edge_weight=1)
        node_bal = compute_read_ranges(g, 4, node_weight=1, edge_weight=0)
        assert edge_bal != node_bal
