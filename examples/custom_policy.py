#!/usr/bin/env python
"""Write your own partitioning policy — the paper's core promise (§III).

CuSP's customization interface is two functions: ``getMaster`` decides
which partition holds each vertex's master proxy and ``getEdgeOwner``
decides which partition owns each edge.  This example implements, from
scratch:

* ``RoundRobin`` — a stateless master rule (pure function: CuSP then
  skips master synchronization entirely, §IV-D5), and
* ``LeastLoaded`` — a *history-sensitive* edge rule that assigns each
  edge to whichever of the two endpoint masters currently owns fewer
  edges, tracking its own ``estate`` exactly as the paper describes.

Run: ``python examples/custom_policy.py``
"""

import numpy as np

from repro import CuSP, Policy, get_dataset
from repro.core import EdgeRule, MasterRule
from repro.core.state import PartitionLoadState
from repro.metrics import measure_quality


class RoundRobin(MasterRule):
    """getMaster: vertex v's master lives on partition v mod k."""

    name = "RoundRobin"

    # Paper-style scalar form.
    def assign(self, prop, node_id, mstate, masters=None):
        return node_id % prop.getNumPartitions()

    # Optional vectorized form (the framework prefers it when present).
    def assign_batch(self, prop, node_ids, mstate, masters=None):
        return (np.asarray(node_ids) % prop.getNumPartitions()).astype(np.int32)


class LeastLoaded(EdgeRule):
    """getEdgeOwner: pick the endpoint master with fewer edges so far.

    The rule keeps per-partition edge counts in its ``estate``; CuSP
    synchronizes that state across hosts periodically, so the counts each
    host sees are approximate between rounds — exactly the semantics the
    paper defines for history-sensitive rules (§IV-D4).
    """

    name = "LeastLoaded"
    stateful = True
    invariant = "vertex-cut"  # no structural guarantee

    def make_state(self, num_partitions, num_hosts):
        return PartitionLoadState(num_partitions, num_hosts)

    def owner(self, prop, src_id, dst_id, src_master, dst_master, estate=None):
        loads = estate.numEdges
        choice = src_master if loads[src_master] <= loads[dst_master] else dst_master
        estate.add_edges(choice, 1)
        return choice


def main() -> None:
    graph = get_dataset("gsh", "small")
    policy = Policy(
        name="RoundRobin+LeastLoaded",
        master_rule=RoundRobin(),
        edge_rule=LeastLoaded(),
    )
    dg = CuSP(num_partitions=8, policy=policy).partition(graph)
    dg.validate(graph)

    q = measure_quality(dg, graph)
    print(f"policy            : {policy.describe()}")
    print(f"replication factor: {q.replication_factor:.2f}")
    print(f"edge balance      : {q.edge_balance:.3f} (least-loaded keeps this low)")
    print(f"edge counts       : {dg.edge_counts().tolist()}")
    print(f"partitioning time : {dg.breakdown.total * 1e3:.3f} ms (simulated)")

    # Compare against the built-in EEC on the same input.
    eec = CuSP(num_partitions=8, policy="EEC").partition(graph)
    print(f"\nfor reference, EEC edge balance: {eec.edge_balance():.3f}, "
          f"replication {eec.replication_factor():.2f}")


if __name__ == "__main__":
    main()
