#!/usr/bin/env python
"""Community analysis on partitioned graphs: the extension applications.

Uses the pieces added beyond the paper's four benchmarks — k-core
decomposition (distributed peeling), exact triangle counting
(neighborhood exchange), and the graph transforms — to profile the dense
core of a web-crawl-like graph, all over real CuSP partitions.

Run: ``python examples/community_analysis.py``
"""

import numpy as np

from repro import CuSP
from repro.analytics import (
    ConnectedComponents,
    Engine,
    KCore,
    count_triangles,
    kcore_reference,
    triangles_reference,
)
from repro.graph import largest_wcc, simplify, webcrawl_like


def main() -> None:
    crawl = webcrawl_like(num_nodes=8_000, avg_degree=10, seed=13)
    sym = simplify(crawl.symmetrize())
    print(f"crawl (symmetric, simple): {sym}")

    # Focus on the largest weakly-connected component.
    wcc, original_ids = largest_wcc(sym)
    print(f"largest WCC: {wcc.num_nodes}/{sym.num_nodes} vertices")

    dg = CuSP(num_partitions=8, policy="CVC").partition(wcc)
    dg.validate(wcc)
    engine = Engine(dg)

    # Sanity: one component, as extracted.
    cc = engine.run(ConnectedComponents())
    assert np.all(cc.values == 0), "WCC extraction vs distributed CC disagree"

    # Triangle census of the component.
    tri = count_triangles(dg)
    assert tri.count == triangles_reference(wcc)
    print(f"triangles: {tri.count} "
          f"(simulated {tri.time * 1e3:.2f} ms over 8 hosts)")

    # Peel the k-core onion.
    print(f"\n{'k':>4} {'core size':>10} {'rounds':>7} {'time (ms)':>10}")
    median_deg = int(np.median(wcc.out_degree()))
    for k in (2, median_deg, 2 * median_deg, 4 * median_deg):
        app = KCore(k)
        res = engine.run(app)
        members = app.in_core(res.values)
        assert np.array_equal(members, kcore_reference(wcc, k) >= k)
        print(f"{k:>4} {int(members.sum()):>10} {res.rounds:>7} "
              f"{res.time * 1e3:>10.3f}")

    print("\nevery distributed result verified against its single-machine "
          "reference")


if __name__ == "__main__":
    main()
