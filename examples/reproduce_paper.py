#!/usr/bin/env python
"""Regenerate the paper's full evaluation in one run.

Drives every experiment in the registry — Table III, Figures 3-7, Tables
IV-VII, and the supplementary studies — at the chosen scale, printing
each artifact and finishing with a checklist of the headline claims.

Run: ``python examples/reproduce_paper.py [tiny|small]``
(small takes a few minutes; tiny finishes in seconds at lower fidelity.)
"""

import sys
import time

from repro.experiments import EXPERIMENTS, ExperimentContext
from repro.metrics import geomean

PAPER_ORDER = [
    "table3", "fig3", "table4", "fig4", "table5",
    "fig5", "fig6", "fig7", "table6", "table7",
    "supp_quality", "supp_vertex_order", "supp_scaling",
    "supp_end_to_end", "supp_orientation", "supp_straggler",
    "supp_schedulers", "supp_memory",
]


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    ctx = ExperimentContext(scale=scale)
    results = {}
    start = time.time()
    for name in PAPER_ORDER:
        t = time.time()
        results[name] = EXPERIMENTS[name](ctx)
        print(results[name].format())
        print(f"[{name}: {time.time() - t:.1f}s]\n")

    # Headline checklist.
    fig3 = results["fig3"]
    cusp_beats_xp = all(
        geomean([r["XtraPulp"] / r[p] for r in fig3.rows]) > 1.0
        for p in ("EEC", "HVC", "CVC", "FEC", "GVC", "SVC")
    )
    t5 = {(r["graph"], r["policy"]): r for r in results["table5"].rows}
    hvc_sends_more = all(
        t5[(g, "HVC")]["assignment (MB)"] + t5[(g, "HVC")]["construction (MB)"]
        > t5[(g, "CVC")]["assignment (MB)"] + t5[(g, "CVC")]["construction (MB)"]
        for g in {g for g, _ in t5}
    )
    f7 = results["fig7"]
    graphs7 = [c for c in f7.columns if c != "batch size (KB)"]
    buffering_pays = all(f7.rows[0][g] > f7.rows[-1][g] for g in graphs7)
    t6_flat = all(
        row["100 rounds"] < 2 * row["1 rounds"] for row in results["table6"].rows
    )
    if scale == "tiny" and not t6_flat:
        # At tiny scale the base partitioning time is microseconds, so
        # fixed per-round costs loom large; the claim holds from 'small'.
        t6_label_suffix = " (needs scale >= small; tiny is latency-dominated)"
    else:
        t6_label_suffix = ""

    print("=" * 60)
    print("headline claims (paper -> this run):")
    for label, ok in [
        ("every CuSP policy partitions faster than XtraPulp", cusp_beats_xp),
        ("HVC communicates more data than CVC", hvc_sends_more),
        ("message buffering is critical (0 is worst)", buffering_pays),
        ("sync-round cost flat through 100 rounds" + t6_label_suffix, t6_flat),
    ]:
        print(f"  [{'x' if ok else ' '}] {label}")
    print(f"total wall time: {time.time() - start:.1f}s at scale '{scale}'")


if __name__ == "__main__":
    main()
