#!/usr/bin/env python
"""Compare every built-in partitioning policy on one input, the way the
paper's Table II + §V evaluation frames it: no policy is best at
everything — speed, replication, balance and communication structure
trade off.

Run: ``python examples/policy_comparison.py``
"""

from repro import CuSP, get_dataset, make_policy, policy_names
from repro.analytics import BFS, Engine, default_source
from repro.baselines import XtraPulp
from repro.metrics import measure_quality
from repro.runtime import REPRO_CALIBRATED


def main() -> None:
    graph = get_dataset("uk", "small")
    k = 8
    print(f"input: {graph}, partitions: {k}\n")

    header = (
        f"{'policy':<10} {'invariant':<11} {'part. ms':>9} {'repl.':>6} "
        f"{'edge bal':>8} {'partners':>8} {'bfs ms':>8}"
    )
    print(header)
    print("-" * len(header))

    source = default_source(graph)
    rows = []
    for name in policy_names() + ["XtraPulp"]:
        if name == "XtraPulp":
            dg = XtraPulp(k, cost_model=REPRO_CALIBRATED).partition(graph)
            invariant = dg.invariant
        else:
            policy = make_policy(name, degree_threshold=20)
            dg = CuSP(k, policy, cost_model=REPRO_CALIBRATED).partition(graph)
            invariant = policy.invariant
        dg.validate(graph)
        q = measure_quality(dg, graph)
        bfs = Engine(dg, cost_model=REPRO_CALIBRATED).run(BFS(source))
        rows.append((name, invariant, dg.breakdown.total, q, bfs.time))
        print(
            f"{name:<10} {invariant:<11} {dg.breakdown.total * 1e3:>9.3f} "
            f"{q.replication_factor:>6.2f} {q.edge_balance:>8.2f} "
            f"{q.max_partners:>8} {bfs.time * 1e3:>8.3f}"
        )

    fastest = min(rows, key=lambda r: r[2])
    best_app = min(rows, key=lambda r: r[4])
    print(f"\nfastest partitioner : {fastest[0]}")
    print(f"best bfs time       : {best_app[0]}")
    print(
        "\nThe paper's point exactly: the best policy depends on what you "
        "optimize for,\nwhich is why the partitioner must be customizable."
    )


if __name__ == "__main__":
    main()
