#!/usr/bin/env python
"""Quickstart: partition a graph with CuSP and inspect the result.

Covers the 90%-case workflow:

1. load or generate a graph,
2. pick a partitioning policy from the paper's Table II,
3. partition for k hosts,
4. look at quality metrics and the per-phase timing breakdown,
5. run an application on the partitions to see them working.

Run: ``python examples/quickstart.py``
"""

from repro import CuSP, get_dataset
from repro.analytics import BFS, Engine, default_source
from repro.metrics import measure_quality


def main() -> None:
    # A scaled stand-in for the paper's clueweb12 web crawl.
    graph = get_dataset("clueweb", "small")
    print(f"input graph: {graph}")

    # Partition for 8 hosts with the Cartesian Vertex-Cut policy
    # (getMaster=ContiguousEB, getEdgeOwner=Cartesian, paper Table II).
    cusp = CuSP(num_partitions=8, policy="CVC")
    dg = cusp.partition(graph)
    dg.validate(graph)  # structural invariants: every edge exactly once, etc.

    print(f"\npartitioned: {dg}")
    quality = measure_quality(dg, graph)
    print(f"replication factor : {quality.replication_factor:.2f}")
    print(f"edge balance       : {quality.edge_balance:.2f} (max/mean)")
    print(f"max comm partners  : {quality.max_partners} of {dg.num_partitions - 1}")

    print("\nsimulated partitioning time by phase:")
    for phase in dg.breakdown.phases:
        print(f"  {phase.name:<24} {phase.total * 1e3:8.3f} ms "
              f"({phase.comm_bytes / 1024:8.1f} KB sent)")
    print(f"  {'TOTAL':<24} {dg.breakdown.total * 1e3:8.3f} ms")

    # The partitions are real: run BFS on them and check a few distances.
    source = default_source(graph)  # paper: highest out-degree vertex
    result = Engine(dg).run(BFS(source))
    reachable = (result.values < 2**62).sum()
    print(f"\nbfs from node {source}: {result.rounds} rounds, "
          f"{reachable}/{graph.num_nodes} reachable, "
          f"simulated time {result.time * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
