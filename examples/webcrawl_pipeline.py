#!/usr/bin/env python
"""End-to-end pipeline on a web-crawl workload: the paper's motivating
scenario (§I) — partition a large crawl, then run the full D-Galois
application suite on the partitions.

Steps:

1. generate a web-crawl-like graph and store it on disk in binary CSR
   (the format CuSP streams from, §III-A),
2. partition it straight from the file,
3. run bfs, cc, pagerank and sssp over the partitions,
4. verify every answer against a single-machine reference,
5. report simulated execution times and communication volumes.

Run: ``python examples/webcrawl_pipeline.py``
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import CuSP
from repro.analytics import (
    BFS,
    ConnectedComponents,
    Engine,
    PageRank,
    SSSP,
    bfs_reference,
    cc_reference,
    default_source,
    pagerank_reference,
    sssp_reference,
)
from repro.graph import webcrawl_like, write_gr


def main() -> None:
    crawl = webcrawl_like(num_nodes=20_000, avg_degree=25, seed=7)
    print(f"synthetic crawl: {crawl}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "crawl.gr"
        write_gr(crawl, path)
        print(f"stored on disk : {path.stat().st_size / 2**20:.1f} MB binary CSR")

        # Partition straight from disk, as CuSP does.
        dg = CuSP(num_partitions=8, policy="CVC").partition(path)
    dg.validate(crawl)
    print(f"partitioned    : {dg}\n")

    source = default_source(crawl)
    runs = [
        ("bfs", crawl, BFS(source), lambda g: bfs_reference(g, source)),
        ("cc", crawl.symmetrize(), ConnectedComponents(), cc_reference),
        ("pagerank", crawl, PageRank(), pagerank_reference),
        ("sssp", crawl.with_random_weights(seed=7), SSSP(source),
         lambda g: sssp_reference(g, source)),
    ]
    print(f"{'app':<10} {'rounds':>6} {'time (ms)':>10} {'comm (KB)':>10}  verified")
    for name, graph, program, reference in runs:
        part = dg if graph is crawl else CuSP(8, "CVC").partition(graph)
        result = Engine(part).run(program)
        ref = reference(graph)
        if name == "pagerank":
            ok = np.allclose(result.values, ref, atol=5e-4)
        else:
            ok = np.array_equal(result.values, ref)
        print(
            f"{name:<10} {result.rounds:>6} {result.time * 1e3:>10.3f} "
            f"{result.comm_bytes / 1024:>10.1f}  "
            f"{'exact match' if ok else 'MISMATCH'}"
        )


if __name__ == "__main__":
    main()
