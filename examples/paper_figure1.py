#!/usr/bin/env python
"""Reproduce the paper's Figure 1: partitioning a 10-vertex example graph
for four hosts under two policies (EEC and CVC), showing the master/mirror
proxy layout per host.

Run: ``python examples/paper_figure1.py``
"""

from repro import CuSP
from repro.graph import paper_figure1_graph

NAMES = "ABCDEFGHIJ"


def show(dg, title: str) -> None:
    print(f"--- {title} ---")
    for p in dg.partitions:
        masters = "".join(NAMES[g] for g in p.master_global_ids)
        mirrors = "".join(NAMES[g] for g in p.mirror_global_ids)
        src, dst = p.global_edges()
        edges = " ".join(f"{NAMES[s]}->{NAMES[d]}" for s, d in zip(src, dst))
        print(f"host {p.host}: masters[{masters:<4}] mirrors[{mirrors:<4}] "
              f"edges: {edges}")
    print(f"replication factor: {dg.replication_factor():.1f}\n")


def main() -> None:
    g = paper_figure1_graph()
    print(f"Figure 1a graph: {g.num_nodes} vertices "
          f"({NAMES}), {g.num_edges} edges\n")

    eec = CuSP(4, "EEC").partition(g)
    eec.validate(g)
    show(eec, "Figure 1b: Edge-balanced Edge-Cut (EEC)")

    cvc = CuSP(4, "CVC").partition(g)
    cvc.validate(g)
    show(cvc, "Figure 1c: Cartesian Vertex-Cut (CVC)")


if __name__ == "__main__":
    main()
